// The concurrent-serving contract, raced for ThreadSanitizer (the
// `tsan` preset runs every suite matching ConcurrentServing): readers
// pin segment-list snapshots of a sharded KB and keep serving at full
// fan-out while a committer lands new versions — without blocking on
// the writer, without torn reads, and with results byte-identical to
// an idle-store run. Also covers the parallel-batch provenance path:
// scratch-store splicing must reproduce the sequential audit trail
// record for record.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/recommendation_service.h"
#include "provenance/store.h"
#include "version/sharded_kb.h"
#include "workload/scenarios.h"

namespace evorec::engine {
namespace {

using rdf::Triple;
using version::ChangeSet;
using version::ShardedKnowledgeBase;
using version::VersionId;

workload::Scenario SmallScenario(uint64_t seed) {
  workload::ScenarioScale scale;
  scale.classes = 30;
  scale.properties = 12;
  scale.instances = 200;
  scale.edges = 400;
  scale.versions = 2;
  scale.operations = 80;
  return workload::MakeDbpediaLike(seed, scale);
}

// Rebuilds a scenario's versioned content as a sharded KB (adopting
// the scenario dictionary, replaying the archived change sets).
std::unique_ptr<ShardedKnowledgeBase> ShardScenario(
    const workload::Scenario& scenario, size_t shards) {
  auto base = scenario.vkb->Snapshot(0);
  EXPECT_TRUE(base.ok());
  auto sharded = std::make_unique<ShardedKnowledgeBase>(
      ShardedKnowledgeBase::Options{.shards = shards}, **base);
  for (VersionId v = 1; v <= scenario.vkb->head(); ++v) {
    auto cs = scenario.vkb->Changes(v);
    EXPECT_TRUE(cs.ok());
    auto committed = sharded->Commit(std::move(cs).value(), "replay",
                                     "v" + std::to_string(v), v);
    EXPECT_TRUE(committed.ok());
  }
  return sharded;
}

// Change sets for the committer thread: valid term ids from the
// scenario's own vocabulary (the dictionary is never touched, per the
// sharded KB's intern-before-commit contract).
std::vector<ChangeSet> CommitterChanges(const workload::Scenario& scenario,
                                        size_t count) {
  std::vector<ChangeSet> changes(count);
  for (size_t c = 0; c < count; ++c) {
    for (size_t i = 0; i < 8; ++i) {
      changes[c].additions.push_back(
          {scenario.classes[(c * 7 + i) % scenario.classes.size()],
           scenario.properties[(c + i) % scenario.properties.size()],
           scenario.classes[(c * 3 + i * 5) % scenario.classes.size()]});
    }
    if (c > 0) {
      // Retract half of what the previous commit added, so tombstones
      // flow through the segment stacks too.
      for (size_t i = 0; i < 4; ++i) {
        changes[c].removals.push_back(changes[c - 1].additions[i]);
      }
    }
  }
  return changes;
}

TEST(ConcurrentServingTest, PinnedReadersRaceACommitterWithoutTearing) {
  workload::Scenario scenario = SmallScenario(77);
  std::unique_ptr<ShardedKnowledgeBase> sharded = ShardScenario(scenario, 4);
  const VersionId frozen_head = sharded->head();

  // Ground truth recorded before the race: per-version sizes and a
  // content sample.
  std::vector<size_t> expected_size(frozen_head + 1);
  std::vector<std::vector<Triple>> expected_sample(frozen_head + 1);
  for (VersionId v = 0; v <= frozen_head; ++v) {
    auto snapshot = sharded->SharedSnapshot(v);
    ASSERT_TRUE(snapshot.ok());
    expected_size[v] = (*snapshot)->size();
    expected_sample[v] =
        (*snapshot)->store().Match({rdf::kAnyTerm, scenario.properties[0],
                                    rdf::kAnyTerm});
  }

  std::vector<ChangeSet> changes = CommitterChanges(scenario, 12);
  std::atomic<int> failures{0};
  std::atomic<bool> done{false};
  {
    std::thread committer([&] {
      for (size_t c = 0; c < changes.size(); ++c) {
        auto id = sharded->Commit(std::move(changes[c]), "committer",
                                  "concurrent " + std::to_string(c),
                                  frozen_head + c + 1);
        if (!id.ok()) failures.fetch_add(1);
      }
      done.store(true);
    });

    constexpr int kReaders = 4;
    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&, r] {
        int rounds = 0;
        while (!done.load() || rounds < 20) {
          const VersionId v = static_cast<VersionId>(
              (r + rounds) % (frozen_head + 1));
          auto snapshot = sharded->SharedSnapshot(v);
          if (!snapshot.ok()) {
            failures.fetch_add(1);
            break;
          }
          // Every read round sees exactly the pinned version: stable
          // size, stable scan results, a k-way merged full scan that
          // agrees with the effective count.
          if ((*snapshot)->size() != expected_size[v]) failures.fetch_add(1);
          if ((*snapshot)->store().Match({rdf::kAnyTerm,
                                          scenario.properties[0],
                                          rdf::kAnyTerm}) !=
              expected_sample[v]) {
            failures.fetch_add(1);
          }
          size_t count = 0;
          (*snapshot)->store().ScanT(
              {rdf::kAnyTerm, rdf::kAnyTerm, rdf::kAnyTerm},
              [&](const Triple&) {
                ++count;
                return true;
              });
          if (count != expected_size[v]) failures.fetch_add(1);
          ++rounds;
        }
      });
    }
    for (std::thread& reader : readers) reader.join();
    committer.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(sharded->head(), frozen_head + 12);
}

TEST(ConcurrentServingTest, BatchesKeepServingWhileCommitsLand) {
  workload::Scenario scenario = SmallScenario(83);
  std::unique_ptr<ShardedKnowledgeBase> sharded = ShardScenario(scenario, 4);
  const VersionId frozen_head = sharded->head();

  measures::MeasureRegistry registry = measures::DefaultRegistry();
  ServiceOptions options;
  options.engine.threads = 2;
  RecommendationService service(registry, options);

  // Expected batch output, computed on the idle store. Profiles are
  // copied fresh per round so delivery bookkeeping never drifts.
  const std::vector<profile::HumanProfile> template_profiles(
      scenario.curators.members());
  auto run_batch = [&](std::vector<recommend::RecommendationList>* out) {
    std::vector<profile::HumanProfile> profiles(template_profiles);
    std::vector<profile::HumanProfile*> pointers;
    for (profile::HumanProfile& prof : profiles) pointers.push_back(&prof);
    auto batch = service.RecommendBatch(*sharded, 0, 1, pointers);
    if (!batch.ok()) return false;
    *out = std::move(batch).value();
    return true;
  };
  std::vector<recommend::RecommendationList> expected;
  ASSERT_TRUE(run_batch(&expected));

  std::vector<ChangeSet> changes = CommitterChanges(scenario, 6);
  std::atomic<int> failures{0};
  std::atomic<bool> done{false};
  {
    std::thread committer([&] {
      for (size_t c = 0; c < changes.size(); ++c) {
        // Through the service, so each commit also refreshes the
        // engine onto the new head while readers keep serving (0,1).
        auto id = service.Commit(*sharded, std::move(changes[c]), "committer",
                                 "landing " + std::to_string(c),
                                 frozen_head + c + 1);
        if (!id.ok()) failures.fetch_add(1);
      }
      done.store(true);
    });

    constexpr int kReaders = 3;
    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&] {
        int rounds = 0;
        while (!done.load() || rounds < 3) {
          std::vector<recommend::RecommendationList> got;
          if (!run_batch(&got) || got.size() != expected.size()) {
            failures.fetch_add(1);
            break;
          }
          // Serving during commits returns the exact idle-store
          // results: same packages, same scores, same explanations.
          for (size_t i = 0; i < got.size(); ++i) {
            if (got[i].items.size() != expected[i].items.size()) {
              failures.fetch_add(1);
              continue;
            }
            for (size_t j = 0; j < got[i].items.size(); ++j) {
              if (got[i].items[j].candidate.id !=
                      expected[i].items[j].candidate.id ||
                  got[i].items[j].relatedness !=
                      expected[i].items[j].relatedness ||
                  got[i].items[j].explanation.ToText() !=
                      expected[i].items[j].explanation.ToText()) {
                failures.fetch_add(1);
              }
            }
          }
          ++rounds;
        }
      });
    }
    for (std::thread& reader : readers) reader.join();
    committer.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(sharded->head(), frozen_head + 6);
  EXPECT_EQ(service.health_state(), HealthState::kHealthy);
}

// Satellite contract: with a provenance store attached the batch stays
// parallel, and the spliced audit trail is byte-identical to the
// sequential run — record ids, derivation inputs, ordering, all of it.
TEST(ConcurrentServingProvenanceTest, ParallelTrailsMatchSequentialTrails) {
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  recommend::RecommenderOptions rec_options;
  rec_options.package_size = 3;

  // Sequential baseline.
  workload::Scenario baseline = SmallScenario(47);
  std::vector<profile::HumanProfile> baseline_profiles(
      baseline.curators.members());
  baseline_profiles.push_back(baseline.end_user);
  std::vector<profile::HumanProfile*> baseline_pointers;
  for (profile::HumanProfile& prof : baseline_profiles) {
    baseline_pointers.push_back(&prof);
  }
  provenance::ProvenanceStore sequential_store;
  ServiceOptions sequential_options;
  sequential_options.recommender = rec_options;
  sequential_options.parallel_batches = false;
  RecommendationService sequential_service(registry, sequential_options);
  sequential_service.AttachProvenance(&sequential_store);
  auto expected = sequential_service.RecommendBatch(*baseline.vkb, 0, 1,
                                                    baseline_pointers);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  // Parallel run over identical inputs.
  workload::Scenario scenario = SmallScenario(47);
  std::vector<profile::HumanProfile> profiles(scenario.curators.members());
  profiles.push_back(scenario.end_user);
  std::vector<profile::HumanProfile*> pointers;
  for (profile::HumanProfile& prof : profiles) pointers.push_back(&prof);
  provenance::ProvenanceStore parallel_store;
  ServiceOptions parallel_options;
  parallel_options.recommender = rec_options;
  parallel_options.parallel_batches = true;
  parallel_options.engine.threads = 4;
  RecommendationService parallel_service(registry, parallel_options);
  parallel_service.AttachProvenance(&parallel_store);
  auto batch =
      parallel_service.RecommendBatch(*scenario.vkb, 0, 1, pointers);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();

  // Results match, including the trail ids each list carries.
  ASSERT_EQ(batch->size(), expected->size());
  for (size_t i = 0; i < expected->size(); ++i) {
    EXPECT_EQ((*batch)[i].provenance_trail, (*expected)[i].provenance_trail)
        << "user " << i;
    ASSERT_EQ((*batch)[i].items.size(), (*expected)[i].items.size());
    for (size_t j = 0; j < (*batch)[i].items.size(); ++j) {
      EXPECT_EQ((*batch)[i].items[j].explanation.provenance_record,
                (*expected)[i].items[j].explanation.provenance_record);
    }
  }

  // The stores match record for record.
  ASSERT_EQ(parallel_store.size(), sequential_store.size());
  ASSERT_GT(parallel_store.size(), 0u);
  for (size_t i = 0; i < parallel_store.size(); ++i) {
    const provenance::ProvRecord& a = parallel_store.records()[i];
    const provenance::ProvRecord& b = sequential_store.records()[i];
    EXPECT_EQ(a.id, b.id) << "record " << i;
    EXPECT_EQ(a.entity, b.entity) << "record " << i;
    EXPECT_EQ(a.activity, b.activity) << "record " << i;
    EXPECT_EQ(a.agent, b.agent) << "record " << i;
    EXPECT_EQ(a.timestamp, b.timestamp) << "record " << i;
    EXPECT_EQ(a.source, b.source) << "record " << i;
    EXPECT_EQ(a.inputs, b.inputs) << "record " << i;
    EXPECT_EQ(a.note, b.note) << "record " << i;
  }
}

// Group flavour of the same contract.
TEST(ConcurrentServingProvenanceTest, GroupBatchTrailsMatchSequential) {
  measures::MeasureRegistry registry = measures::DefaultRegistry();

  workload::Scenario baseline = SmallScenario(53);
  provenance::ProvenanceStore sequential_store;
  ServiceOptions sequential_options;
  sequential_options.parallel_batches = false;
  RecommendationService sequential_service(registry, sequential_options);
  sequential_service.AttachProvenance(&sequential_store);
  std::vector<profile::Group*> baseline_groups{&baseline.curators};
  auto expected = sequential_service.RecommendGroupBatch(*baseline.vkb, 0, 1,
                                                         baseline_groups);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  workload::Scenario scenario = SmallScenario(53);
  provenance::ProvenanceStore parallel_store;
  ServiceOptions parallel_options;
  parallel_options.engine.threads = 4;
  RecommendationService parallel_service(registry, parallel_options);
  parallel_service.AttachProvenance(&parallel_store);
  std::vector<profile::Group*> groups{&scenario.curators};
  auto batch =
      parallel_service.RecommendGroupBatch(*scenario.vkb, 0, 1, groups);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();

  ASSERT_EQ(batch->size(), expected->size());
  EXPECT_EQ((*batch)[0].provenance_trail, (*expected)[0].provenance_trail);
  ASSERT_EQ(parallel_store.size(), sequential_store.size());
  for (size_t i = 0; i < parallel_store.size(); ++i) {
    EXPECT_EQ(parallel_store.records()[i].activity,
              sequential_store.records()[i].activity);
    EXPECT_EQ(parallel_store.records()[i].inputs,
              sequential_store.records()[i].inputs);
  }
}

}  // namespace
}  // namespace evorec::engine
