#include "delta/delta_io.h"

#include <gtest/gtest.h>

#include "rdf/knowledge_base.h"
#include "rdf/ntriples.h"
#include "version/versioned_kb.h"

namespace evorec::delta {
namespace {

using rdf::Triple;
using version::ChangeSet;

TEST(DeltaIoTest, RoundTripsChangeSets) {
  rdf::Dictionary dict;
  ChangeSet changes;
  changes.additions.push_back({dict.InternIri("http://x/a"),
                               dict.InternIri("http://x/p"),
                               dict.InternIri("http://x/b")});
  changes.additions.push_back({dict.InternIri("http://x/a"),
                               dict.InternIri("http://x/name"),
                               dict.InternLiteral("Ann \"A.\"\n")});
  changes.removals.push_back({dict.InternIri("http://x/c"),
                              dict.InternIri("http://x/p"),
                              dict.InternIri("http://x/d")});

  const std::string text = WriteChangeSet(changes, dict);
  EXPECT_NE(text.find("A <http://x/a>"), std::string::npos);
  EXPECT_NE(text.find("D <http://x/c>"), std::string::npos);

  // Reimport into the same dictionary: identical ids.
  auto parsed = ParseChangeSet(text, dict);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->additions, changes.additions);
  EXPECT_EQ(parsed->removals, changes.removals);
}

TEST(DeltaIoTest, ReimportIntoFreshDictionaryPreservesCounts) {
  rdf::Dictionary dict;
  ChangeSet changes;
  changes.additions.push_back({dict.InternIri("http://x/a"),
                               dict.InternIri("http://x/p"),
                               dict.InternIri("http://x/b")});
  changes.removals.push_back({dict.InternIri("http://x/c"),
                              dict.InternIri("http://x/p"),
                              dict.InternIri("http://x/d")});
  const std::string text = WriteChangeSet(changes, dict);
  rdf::Dictionary fresh;
  auto parsed = ParseChangeSet(text, fresh);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->additions.size(), 1u);
  EXPECT_EQ(parsed->removals.size(), 1u);
}

TEST(DeltaIoTest, AcceptsCommentsAndBlankLines) {
  rdf::Dictionary dict;
  auto parsed = ParseChangeSet(
      "# a synchronisation delta\n"
      "\n"
      "A <http://x/a> <http://x/p> <http://x/b> .\n",
      dict);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->additions.size(), 1u);
  EXPECT_TRUE(parsed->removals.empty());
}

TEST(DeltaIoTest, RejectsMalformedInput) {
  rdf::Dictionary dict;
  // Missing op prefix.
  auto no_prefix =
      ParseChangeSet("<http://x/a> <http://x/p> <http://x/b> .\n", dict);
  EXPECT_FALSE(no_prefix.ok());
  // Unknown op.
  EXPECT_FALSE(
      ParseChangeSet("X <http://x/a> <http://x/p> <http://x/b> .\n", dict)
          .ok());
  // Bad triple.
  auto bad_triple = ParseChangeSet("A <http://x/a> garbage .\n", dict);
  EXPECT_FALSE(bad_triple.ok());
  EXPECT_NE(bad_triple.status().message().find("line 1"),
            std::string::npos);
}

TEST(DeltaIoTest, SynchronisesAReplica) {
  // The cited use case ([2]): producer commits, ships the textual
  // delta; consumer applies it and converges to the same snapshot.
  version::VersionedKnowledgeBase producer;
  ChangeSet cs;
  auto& dict = producer.dictionary();
  const auto& voc = producer.vocabulary();
  cs.additions.push_back({dict.InternIri("http://x/alice"), voc.rdf_type,
                          dict.InternIri("http://x/Person")});
  cs.additions.push_back({dict.InternIri("http://x/bob"), voc.rdf_type,
                          dict.InternIri("http://x/Person")});
  (void)producer.Commit(cs, "producer", "v1");
  auto shipped = WriteChangeSet(cs, dict);

  version::VersionedKnowledgeBase consumer;
  auto received = ParseChangeSet(shipped, consumer.dictionary());
  ASSERT_TRUE(received.ok());
  (void)consumer.Commit(*received, "consumer", "sync");

  auto producer_head = producer.Snapshot(producer.head());
  auto consumer_head = consumer.Snapshot(consumer.head());
  ASSERT_TRUE(producer_head.ok());
  ASSERT_TRUE(consumer_head.ok());
  EXPECT_EQ((*producer_head)->size(), (*consumer_head)->size());
  // Compare by serialisation (dictionaries differ).
  EXPECT_EQ(rdf::WriteNTriples((*producer_head)->store(),
                               producer.dictionary()),
            rdf::WriteNTriples((*consumer_head)->store(),
                               consumer.dictionary()));
}

}  // namespace
}  // namespace evorec::delta
