#include "recommend/fairness.h"

#include <gtest/gtest.h>

#include <set>

namespace evorec::recommend {
namespace {

TEST(AggregateUtilityTest, Strategies) {
  const std::vector<double> utilities = {0.2, 0.8, 0.5};
  EXPECT_DOUBLE_EQ(AggregateUtility(utilities, GroupAggregation::kAverage),
                   0.5);
  EXPECT_DOUBLE_EQ(
      AggregateUtility(utilities, GroupAggregation::kLeastMisery), 0.2);
  EXPECT_DOUBLE_EQ(
      AggregateUtility(utilities, GroupAggregation::kMostPleasure), 0.8);
  EXPECT_DOUBLE_EQ(AggregateUtility({}, GroupAggregation::kAverage), 0.0);
}

TEST(MemberSatisfactionTest, BestSelectedItemCounts) {
  const UtilityMatrix utilities = {
      {0.1, 0.9, 0.3},  // member 0
      {0.7, 0.2, 0.4},  // member 1
  };
  EXPECT_DOUBLE_EQ(MemberSatisfaction(utilities, 0, {0, 2}), 0.3);
  EXPECT_DOUBLE_EQ(MemberSatisfaction(utilities, 0, {1}), 0.9);
  EXPECT_DOUBLE_EQ(MemberSatisfaction(utilities, 1, {}), 0.0);
}

TEST(EvaluatePackageTest, Diagnostics) {
  const UtilityMatrix utilities = {
      {0.9, 0.8},
      {0.1, 0.2},
  };
  const auto diag = EvaluatePackage(utilities, {0, 1});
  EXPECT_DOUBLE_EQ(diag.satisfaction[0], 0.9);
  EXPECT_DOUBLE_EQ(diag.satisfaction[1], 0.2);
  EXPECT_NEAR(diag.mean_satisfaction, 0.55, 1e-9);
  EXPECT_DOUBLE_EQ(diag.min_satisfaction, 0.2);
  EXPECT_GT(diag.gini, 0.0);
}

TEST(EvaluatePackageTest, DetectsAlwaysLeastSatisfiedMember) {
  // Member 1 is strictly worst on every item — the paper's explicit
  // unfairness pattern.
  const UtilityMatrix unfair = {
      {0.9, 0.8, 0.7},
      {0.1, 0.2, 0.1},
      {0.5, 0.6, 0.5},
  };
  const auto diag = EvaluatePackage(unfair, {0, 1, 2});
  EXPECT_TRUE(diag.has_always_least_satisfied_member);
  EXPECT_EQ(diag.always_least_satisfied_member, 1u);

  // Balanced: every member wins somewhere.
  const UtilityMatrix fair = {
      {0.9, 0.1},
      {0.1, 0.9},
  };
  const auto fair_diag = EvaluatePackage(fair, {0, 1});
  EXPECT_FALSE(fair_diag.has_always_least_satisfied_member);
}

TEST(SelectByAggregationTest, AverageVersusLeastMisery) {
  // Candidate 0: great for member 0, terrible for member 1.
  // Candidate 1: mediocre for both.
  const UtilityMatrix utilities = {
      {1.0, 0.5},
      {0.0, 0.4},
  };
  const auto avg = SelectByAggregation(utilities, 1,
                                       GroupAggregation::kAverage);
  ASSERT_EQ(avg.size(), 1u);
  EXPECT_EQ(avg[0], 0u);  // mean 0.5 > 0.45
  const auto misery = SelectByAggregation(utilities, 1,
                                          GroupAggregation::kLeastMisery);
  ASSERT_EQ(misery.size(), 1u);
  EXPECT_EQ(misery[0], 1u);  // min 0.4 > 0.0
}

TEST(SelectFairPackageTest, CoversEveryMember) {
  // Three members with disjoint tastes plus a distractor candidate
  // that only helps member 0; k=3 must serve all three members.
  const UtilityMatrix utilities = {
      {0.9, 0.0, 0.0, 0.8},
      {0.0, 0.9, 0.0, 0.0},
      {0.0, 0.0, 0.9, 0.0},
  };
  const auto package = SelectFairPackage(utilities, 3);
  ASSERT_EQ(package.size(), 3u);
  const auto diag = EvaluatePackage(utilities, package);
  EXPECT_DOUBLE_EQ(diag.min_satisfaction, 0.9);
  EXPECT_EQ(std::set<size_t>(package.begin(), package.end()),
            (std::set<size_t>{0, 1, 2}));
}

TEST(SelectFairPackageTest, BeatsAverageOnMinSatisfaction) {
  // Average-aggregation loves candidates 0/1 (loved by the majority),
  // which starve member 2.
  const UtilityMatrix utilities = {
      {0.9, 0.8, 0.0},
      {0.9, 0.8, 0.0},
      {0.0, 0.1, 0.7},
  };
  const auto greedy =
      SelectByAggregation(utilities, 2, GroupAggregation::kAverage);
  const auto fair = SelectFairPackage(utilities, 2);
  const auto greedy_diag = EvaluatePackage(utilities, greedy);
  const auto fair_diag = EvaluatePackage(utilities, fair);
  EXPECT_GT(fair_diag.min_satisfaction, greedy_diag.min_satisfaction);
  // And the paper's trade-off: fairness costs little mean satisfaction.
  EXPECT_GE(fair_diag.mean_satisfaction, 0.5);
}

TEST(SelectFairPackageTest, TieBreaksByMean) {
  // Both candidates give the same min; candidate 1 has a higher mean.
  const UtilityMatrix utilities = {
      {0.5, 0.5},
      {0.5, 0.9},
  };
  const auto package = SelectFairPackage(utilities, 1);
  ASSERT_EQ(package.size(), 1u);
  EXPECT_EQ(package[0], 1u);
}

TEST(SelectionEdgeCasesTest, EmptyAndOversizedRequests) {
  EXPECT_TRUE(SelectFairPackage({}, 3).empty());
  EXPECT_TRUE(SelectByAggregation({}, 3, GroupAggregation::kAverage).empty());
  const UtilityMatrix utilities = {{0.5, 0.6}};
  EXPECT_EQ(SelectFairPackage(utilities, 99).size(), 2u);
  EXPECT_EQ(
      SelectByAggregation(utilities, 99, GroupAggregation::kAverage).size(),
      2u);
}

TEST(GiniDiagnosticsTest, EqualSatisfactionMeansZeroGini) {
  const UtilityMatrix utilities = {
      {0.5, 0.0},
      {0.0, 0.5},
  };
  const auto diag = EvaluatePackage(utilities, {0, 1});
  EXPECT_DOUBLE_EQ(diag.gini, 0.0);
  EXPECT_DOUBLE_EQ(diag.min_satisfaction, diag.mean_satisfaction);
}

}  // namespace
}  // namespace evorec::recommend
