#include "version/versioned_kb.h"

#include <gtest/gtest.h>

namespace evorec::version {
namespace {

using rdf::Triple;

ChangeSet Changes(std::vector<Triple> additions,
                  std::vector<Triple> removals) {
  ChangeSet cs;
  cs.additions = std::move(additions);
  cs.removals = std::move(removals);
  return cs;
}

class VersionedKbTest : public ::testing::TestWithParam<ArchivePolicy> {};

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, VersionedKbTest,
    ::testing::Values(ArchivePolicy::kFullMaterialization,
                      ArchivePolicy::kDeltaChain,
                      ArchivePolicy::kHybridCheckpoint),
    [](const auto& param_info) {
      switch (param_info.param) {
        case ArchivePolicy::kFullMaterialization:
          return "Full";
        case ArchivePolicy::kDeltaChain:
          return "DeltaChain";
        case ArchivePolicy::kHybridCheckpoint:
          return "Hybrid";
      }
      return "Unknown";
    });

TEST_P(VersionedKbTest, StartsWithEmptyBase) {
  VersionedKnowledgeBase vkb(GetParam());
  EXPECT_EQ(vkb.version_count(), 1u);
  EXPECT_EQ(vkb.head(), 0u);
  auto snapshot = vkb.Snapshot(0);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ((*snapshot)->size(), 0u);
}

TEST_P(VersionedKbTest, CommitAppliesAdditionsAndRemovals) {
  VersionedKnowledgeBase vkb(GetParam());
  auto v1 = vkb.Commit(Changes({{1, 2, 3}, {4, 5, 6}}, {}), "ann", "add");
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, 1u);
  auto v2 = vkb.Commit(Changes({{7, 8, 9}}, {{1, 2, 3}}), "bob", "edit");
  ASSERT_TRUE(v2.ok());

  auto s1 = vkb.Snapshot(1);
  ASSERT_TRUE(s1.ok());
  EXPECT_TRUE((*s1)->store().Contains({1, 2, 3}));
  EXPECT_EQ((*s1)->size(), 2u);

  auto s2 = vkb.Snapshot(2);
  ASSERT_TRUE(s2.ok());
  EXPECT_FALSE((*s2)->store().Contains({1, 2, 3}));
  EXPECT_TRUE((*s2)->store().Contains({7, 8, 9}));
  EXPECT_EQ((*s2)->size(), 2u);
}

TEST_P(VersionedKbTest, HistoricalSnapshotsAreImmutable) {
  VersionedKnowledgeBase vkb(GetParam());
  (void)vkb.Commit(Changes({{1, 1, 1}}, {}), "a", "v1");
  (void)vkb.Commit(Changes({}, {{1, 1, 1}}), "a", "v2");
  auto s1 = vkb.Snapshot(1);
  ASSERT_TRUE(s1.ok());
  EXPECT_TRUE((*s1)->store().Contains({1, 1, 1}));
}

TEST_P(VersionedKbTest, InfoRecordsMetadata) {
  VersionedKnowledgeBase vkb(GetParam());
  (void)vkb.Commit(Changes({{1, 1, 1}, {2, 2, 2}}, {}), "ann", "initial load",
                   /*timestamp=*/77);
  auto info = vkb.Info(1);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->author, "ann");
  EXPECT_EQ(info->message, "initial load");
  EXPECT_EQ(info->timestamp, 77u);
  EXPECT_EQ(info->additions, 2u);
  EXPECT_EQ(info->removals, 0u);
  EXPECT_FALSE(vkb.Info(9).ok());
}

TEST_P(VersionedKbTest, ChangesReconstructsPerVersionDelta) {
  VersionedKnowledgeBase vkb(GetParam());
  (void)vkb.Commit(Changes({{1, 1, 1}}, {}), "a", "v1");
  (void)vkb.Commit(Changes({{2, 2, 2}}, {{1, 1, 1}}), "a", "v2");
  auto cs = vkb.Changes(2);
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(cs->additions, (std::vector<Triple>{{2, 2, 2}}));
  EXPECT_EQ(cs->removals, (std::vector<Triple>{{1, 1, 1}}));
  EXPECT_FALSE(vkb.Changes(0).ok());
  EXPECT_FALSE(vkb.Changes(5).ok());
}

TEST_P(VersionedKbTest, MaterializeUncachedMatchesSnapshot) {
  VersionedKnowledgeBase vkb(GetParam());
  (void)vkb.Commit(Changes({{1, 1, 1}, {2, 2, 2}}, {}), "a", "v1");
  (void)vkb.Commit(Changes({{3, 3, 3}}, {{2, 2, 2}}), "a", "v2");
  for (VersionId v = 0; v <= 2; ++v) {
    auto cached = vkb.Snapshot(v);
    auto fresh = vkb.MaterializeUncached(v);
    ASSERT_TRUE(cached.ok());
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ((*cached)->store().triples(), fresh->store().triples())
        << "version " << v;
  }
}

TEST_P(VersionedKbTest, SnapshotCacheEviction) {
  VersionedKnowledgeBase vkb(GetParam());
  (void)vkb.Commit(Changes({{1, 1, 1}}, {}), "a", "v1");
  auto before = vkb.Snapshot(1);
  ASSERT_TRUE(before.ok());
  vkb.EvictSnapshotCache();
  auto after = vkb.Snapshot(1);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)->store().triples(),
            (std::vector<Triple>{{1, 1, 1}}));
}

TEST_P(VersionedKbTest, UnknownVersionsError) {
  VersionedKnowledgeBase vkb(GetParam());
  EXPECT_FALSE(vkb.Snapshot(3).ok());
  EXPECT_FALSE(vkb.MaterializeUncached(3).ok());
}

TEST_P(VersionedKbTest, InitialSnapshotConstructor) {
  rdf::KnowledgeBase initial;
  initial.AddIriTriple("http://x/A", "http://x/p", "http://x/B");
  VersionedKnowledgeBase vkb(GetParam(), std::move(initial));
  auto s0 = vkb.Snapshot(0);
  ASSERT_TRUE(s0.ok());
  EXPECT_EQ((*s0)->size(), 1u);
}

TEST_P(VersionedKbTest, EmptyCommitIsLegal) {
  VersionedKnowledgeBase vkb(GetParam());
  auto v = vkb.Commit(ChangeSet{}, "a", "noop");
  ASSERT_TRUE(v.ok());
  auto s = vkb.Snapshot(*v);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ((*s)->size(), 0u);
}

TEST_P(VersionedKbTest, MoveCommitRecordsMetadataAndChanges) {
  VersionedKnowledgeBase vkb(GetParam());
  ChangeSet cs = Changes({{1, 2, 3}, {4, 5, 6}}, {});
  auto v = vkb.Commit(std::move(cs), "ann", "moved");
  ASSERT_TRUE(v.ok());
  auto info = vkb.Info(*v);
  ASSERT_TRUE(info.ok());
  // Sizes are captured before the change set is moved into storage.
  EXPECT_EQ(info->additions, 2u);
  EXPECT_EQ(info->removals, 0u);
  auto changes = vkb.Changes(*v);
  ASSERT_TRUE(changes.ok());
  EXPECT_EQ(changes->additions.size(), 2u);
  auto s = vkb.Snapshot(*v);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE((*s)->store().Contains({1, 2, 3}));
  EXPECT_TRUE((*s)->store().Contains({4, 5, 6}));
}

TEST(VersionedKbPolicyTest, StorageBytesCountsSnapshotCache) {
  VersionedKnowledgeBase vkb(ArchivePolicy::kDeltaChain);
  ChangeSet base;
  for (uint32_t i = 0; i < 400; ++i) base.additions.push_back({i, 1, i});
  (void)vkb.Commit(base, "a", "bulk");
  (void)vkb.Commit(Changes({{1000, 2, 0}}, {}), "a", "small");
  const size_t before_cache = vkb.StorageBytes();
  auto s = vkb.Snapshot(vkb.head());
  ASSERT_TRUE(s.ok());
  const size_t with_cache = vkb.StorageBytes();
  EXPECT_GT(with_cache, before_cache);
  vkb.EvictSnapshotCache();
  EXPECT_LT(vkb.StorageBytes(), with_cache);
}

TEST(VersionedKbPolicyTest, DeltaChainUsesLessStorageThanFull) {
  auto build = [](ArchivePolicy policy) {
    VersionedKnowledgeBase vkb(policy);
    // A growing base with small per-version deltas.
    ChangeSet base;
    for (uint32_t i = 0; i < 500; ++i) base.additions.push_back({i, 1, i});
    (void)vkb.Commit(base, "a", "bulk");
    for (uint32_t v = 0; v < 10; ++v) {
      (void)vkb.Commit(Changes({{1000 + v, 2, v}}, {}), "a", "small");
    }
    return vkb.StorageBytes();
  };
  EXPECT_LT(build(ArchivePolicy::kDeltaChain),
            build(ArchivePolicy::kFullMaterialization));
}

TEST(VersionedKbPolicyTest, HybridStorageSitsBetween) {
  auto build = [](ArchivePolicy policy) {
    VersionedKnowledgeBase vkb(policy, /*checkpoint_interval=*/4);
    ChangeSet base;
    for (uint32_t i = 0; i < 500; ++i) base.additions.push_back({i, 1, i});
    (void)vkb.Commit(base, "a", "bulk");
    for (uint32_t v = 0; v < 12; ++v) {
      (void)vkb.Commit(Changes({{1000 + v, 2, v}}, {}), "a", "small");
    }
    return vkb.StorageBytes();
  };
  const size_t chain = build(ArchivePolicy::kDeltaChain);
  const size_t hybrid = build(ArchivePolicy::kHybridCheckpoint);
  const size_t full = build(ArchivePolicy::kFullMaterialization);
  EXPECT_LT(chain, hybrid);
  EXPECT_LT(hybrid, full);
}

TEST(VersionedKbPolicyTest, HybridAgreesWithFullOnLongHistories) {
  VersionedKnowledgeBase full(ArchivePolicy::kFullMaterialization);
  VersionedKnowledgeBase hybrid(ArchivePolicy::kHybridCheckpoint,
                                /*checkpoint_interval=*/3);
  for (uint32_t v = 0; v < 11; ++v) {
    ChangeSet cs = Changes({{v, 1, v}, {v, 2, v}},
                           v > 1 ? std::vector<Triple>{{v - 2, 1, v - 2}}
                                 : std::vector<Triple>{});
    (void)full.Commit(cs, "a", "step");
    (void)hybrid.Commit(cs, "a", "step");
  }
  for (VersionId v = 0; v < full.version_count(); ++v) {
    auto sf = full.Snapshot(v);
    auto sh = hybrid.Snapshot(v);
    ASSERT_TRUE(sf.ok());
    ASSERT_TRUE(sh.ok());
    EXPECT_EQ((*sf)->store().triples(), (*sh)->store().triples())
        << "version " << v;
  }
}

TEST(VersionedKbPolicyTest, PoliciesAgreeOnAllSnapshots) {
  VersionedKnowledgeBase full(ArchivePolicy::kFullMaterialization);
  VersionedKnowledgeBase chain(ArchivePolicy::kDeltaChain);
  std::vector<ChangeSet> history = {
      Changes({{1, 1, 1}, {2, 2, 2}, {3, 3, 3}}, {}),
      Changes({{4, 4, 4}}, {{2, 2, 2}}),
      Changes({{2, 2, 2}}, {{1, 1, 1}, {3, 3, 3}}),
  };
  for (const ChangeSet& cs : history) {
    (void)full.Commit(cs, "a", "step");
    (void)chain.Commit(cs, "a", "step");
  }
  for (VersionId v = 0; v < 4; ++v) {
    auto sf = full.Snapshot(v);
    auto sc = chain.Snapshot(v);
    ASSERT_TRUE(sf.ok());
    ASSERT_TRUE(sc.ok());
    EXPECT_EQ((*sf)->store().triples(), (*sc)->store().triples())
        << "version " << v;
  }
}

}  // namespace
}  // namespace evorec::version
