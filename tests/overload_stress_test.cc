// The overload serving contract under real races (runs under TSan via
// the Overload filter in CMakePresets): admission control decides
// *whether* a request is served, never *what* it is served. Four
// threads hammer a service with a tight in-flight limit; every
// admitted result must be byte-identical to a no-admission oracle, and
// every refusal must be the typed kResourceExhausted shed.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "evorec.h"

namespace evorec {
namespace {

using engine::RecommendationService;
using engine::ServiceOptions;

workload::Scenario SmallScenario(uint64_t seed = 7) {
  workload::ScenarioScale scale;
  scale.classes = 40;
  scale.properties = 14;
  scale.instances = 300;
  scale.edges = 600;
  scale.versions = 2;
  scale.operations = 120;
  return workload::MakeDbpediaLike(seed, scale);
}

// Full structural comparison of two delivered lists, including the
// rendered explanation text.
void ExpectIdenticalLists(const recommend::RecommendationList& a,
                          const recommend::RecommendationList& b) {
  ASSERT_EQ(a.items.size(), b.items.size());
  for (size_t i = 0; i < a.items.size(); ++i) {
    const recommend::RecommendationItem& x = a.items[i];
    const recommend::RecommendationItem& y = b.items[i];
    EXPECT_EQ(x.candidate.id, y.candidate.id);
    EXPECT_EQ(x.candidate.top_terms, y.candidate.top_terms);
    EXPECT_EQ(x.relatedness, y.relatedness);
    EXPECT_EQ(x.novelty, y.novelty);
    EXPECT_EQ(x.explanation.ToText(), y.explanation.ToText());
  }
  EXPECT_EQ(a.set_diversity, b.set_diversity);
  EXPECT_EQ(a.category_coverage, b.category_coverage);
  EXPECT_EQ(a.candidate_pool_size, b.candidate_pool_size);
  EXPECT_EQ(a.redacted_terms, b.redacted_terms);
  EXPECT_EQ(a.dropped_candidates, b.dropped_candidates);
  EXPECT_EQ(a.provenance_trail, b.provenance_trail);
}

TEST(OverloadStressTest, AdmittedResultsMatchNoAdmissionOracle) {
  workload::Scenario scenario = SmallScenario();
  measures::MeasureRegistry registry = measures::DefaultRegistry();

  // Profiles are served repeatedly, so delivery must not mutate them.
  ServiceOptions base_options;
  base_options.recommender.record_seen = false;
  base_options.engine.threads = 2;

  constexpr int kThreads = 4;
  constexpr int kUsersPerThread = 2;
  // Threads run at least kMinRounds each, then keep going until the
  // race has been observed from both sides (some request served AND
  // some request shed) or the cap is hit — a fixed small round count
  // can serialize behind thread-spawn latency on a loaded machine and
  // never overlap.
  constexpr int kMinRounds = 40;
  constexpr int kMaxRounds = 4000;

  // Population: each thread owns its users (a profile may only be in
  // one in-flight request at a time).
  auto head_snapshot = scenario.vkb->Snapshot(scenario.vkb->head());
  ASSERT_TRUE(head_snapshot.ok());
  const schema::SchemaView head_view = schema::SchemaView::Build(**head_snapshot);
  std::vector<std::vector<profile::HumanProfile>> users(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    for (int u = 0; u < kUsersPerThread; ++u) {
      profile::HumanProfile prof("t" + std::to_string(t) + "-u" +
                                 std::to_string(u));
      const auto& classes = head_view.classes();
      if (!classes.empty()) {
        prof.SetInterest(classes[(t * kUsersPerThread + u) % classes.size()],
                         1.0);
        prof.SetInterest(classes[(t + u + 3) % classes.size()], 0.5);
      }
      users[t].push_back(std::move(prof));
    }
  }

  // Oracle: the exact same pipeline with no admission layer at all,
  // run sequentially.
  RecommendationService oracle(registry, base_options);
  std::vector<std::vector<recommend::RecommendationList>> expected(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    for (profile::HumanProfile& prof : users[t]) {
      auto list = oracle.Recommend(*scenario.vkb, 0, 1, prof);
      ASSERT_TRUE(list.ok()) << list.status().ToString();
      expected[t].push_back(std::move(*list));
    }
  }

  // Protected service: in-flight limit 1, so concurrent threads race
  // the single slot and most requests shed.
  ServiceOptions guarded_options = base_options;
  guarded_options.overload.admission_enabled = true;
  guarded_options.overload.admission.max_in_flight = 1;
  guarded_options.overload.admission.priority_reserve = 0;
  RecommendationService guarded(registry, guarded_options);
  ASSERT_TRUE(guarded.WarmStart(*scenario.vkb, 0, 1).ok());

  std::atomic<int> served{0};
  std::atomic<int> shed{0};
  std::atomic<int> wrong_code{0};
  std::atomic<int> at_the_gate{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Start barrier: all threads begin hammering together.
      ++at_the_gate;
      while (at_the_gate.load() < kThreads) std::this_thread::yield();
      for (int round = 0; round < kMaxRounds; ++round) {
        const int u = round % kUsersPerThread;
        auto list = guarded.Recommend(*scenario.vkb, 0, 1, users[t][u]);
        if (list.ok()) {
          ++served;
          // gtest assertions are thread-safe on pthreads platforms.
          ExpectIdenticalLists(*list, expected[t][u]);
        } else if (list.status().code() == StatusCode::kResourceExhausted) {
          ++shed;
        } else {
          ++wrong_code;
        }
        if (round + 1 >= kMinRounds && served.load() > 0 &&
            shed.load() > 0) {
          break;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // The race is real on both sides: work got through AND got shed.
  EXPECT_GT(served.load(), 0);
  EXPECT_GT(shed.load(), 0);
  EXPECT_EQ(wrong_code.load(), 0);

  const engine::AdmissionStats stats = guarded.admission_stats();
  EXPECT_EQ(stats.admitted_bulk, static_cast<uint64_t>(served.load()));
  EXPECT_EQ(stats.sheds(), static_cast<uint64_t>(shed.load()));
  EXPECT_EQ(stats.peak_in_flight, 1u);
  EXPECT_EQ(guarded.health().shed_requests,
            static_cast<uint64_t>(shed.load()));
}

}  // namespace
}  // namespace evorec
