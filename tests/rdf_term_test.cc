#include <gtest/gtest.h>

#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "rdf/triple.h"
#include "rdf/vocabulary.h"

namespace evorec::rdf {
namespace {

TEST(TermTest, Factories) {
  const Term iri = Term::Iri("http://x.org/A");
  EXPECT_TRUE(iri.is_iri());
  EXPECT_EQ(iri.lexical, "http://x.org/A");

  const Term lit = Term::Literal("42", iri::kXsdInteger);
  EXPECT_TRUE(lit.is_literal());
  EXPECT_EQ(lit.datatype, iri::kXsdInteger);

  const Term lang = Term::Literal("hello", "", "en");
  EXPECT_EQ(lang.language, "en");

  const Term blank = Term::Blank("b0");
  EXPECT_TRUE(blank.is_blank());
}

TEST(TermTest, NTriplesSerialization) {
  EXPECT_EQ(Term::Iri("http://x/A").ToNTriples(), "<http://x/A>");
  EXPECT_EQ(Term::Blank("b1").ToNTriples(), "_:b1");
  EXPECT_EQ(Term::Literal("v").ToNTriples(), "\"v\"");
  EXPECT_EQ(Term::Literal("v", "http://t").ToNTriples(),
            "\"v\"^^<http://t>");
  EXPECT_EQ(Term::Literal("v", "", "de").ToNTriples(), "\"v\"@de");
  EXPECT_EQ(Term::Literal("a\"b").ToNTriples(), "\"a\\\"b\"");
}

TEST(TermTest, EqualityDistinguishesKinds) {
  EXPECT_EQ(Term::Iri("x"), Term::Iri("x"));
  EXPECT_FALSE(Term::Iri("x") == Term::Blank("x"));
  EXPECT_FALSE(Term::Literal("x") == Term::Literal("x", "t"));
  EXPECT_FALSE(Term::Literal("x", "", "en") == Term::Literal("x", "", "fr"));
}

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  const TermId a = dict.InternIri("http://x/A");
  const TermId a2 = dict.InternIri("http://x/A");
  const TermId b = dict.InternIri("http://x/B");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(DictionaryTest, IdsAreDenseAndLookupable) {
  Dictionary dict;
  const TermId a = dict.InternIri("http://x/A");
  const TermId lit = dict.InternLiteral("v", "", "en");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(lit, 1u);
  auto term = dict.Lookup(lit);
  ASSERT_TRUE(term.ok());
  EXPECT_EQ(term->language, "en");
  EXPECT_FALSE(dict.Lookup(99).ok());
}

TEST(DictionaryTest, FindDoesNotInsert) {
  Dictionary dict;
  EXPECT_EQ(dict.Find(Term::Iri("http://x/A")), kAnyTerm);
  EXPECT_EQ(dict.size(), 0u);
  dict.InternIri("http://x/A");
  EXPECT_EQ(dict.Find(Term::Iri("http://x/A")), 0u);
}

TEST(DictionaryTest, DistinguishesLiteralFromIri) {
  Dictionary dict;
  const TermId iri = dict.InternIri("x");
  const TermId lit = dict.InternLiteral("x");
  EXPECT_NE(iri, lit);
}

TEST(TripleTest, OrderingIsSpo) {
  EXPECT_LT(Triple(0, 0, 1), Triple(0, 1, 0));
  EXPECT_LT(Triple(0, 1, 0), Triple(1, 0, 0));
  EXPECT_LT(Triple(1, 2, 3), Triple(1, 2, 4));
  EXPECT_EQ(Triple(1, 2, 3), Triple(1, 2, 3));
}

TEST(TriplePatternTest, WildcardsMatch) {
  const Triple t(1, 2, 3);
  EXPECT_TRUE(TriplePattern(kAnyTerm, kAnyTerm, kAnyTerm).Matches(t));
  EXPECT_TRUE(TriplePattern(1, kAnyTerm, 3).Matches(t));
  EXPECT_FALSE(TriplePattern(1, kAnyTerm, 4).Matches(t));
  EXPECT_FALSE(TriplePattern(2, 2, 3).Matches(t));
}

TEST(TripleHashTest, EqualTriplesHashEqually) {
  TripleHash hash;
  EXPECT_EQ(hash(Triple(1, 2, 3)), hash(Triple(1, 2, 3)));
  EXPECT_NE(hash(Triple(1, 2, 3)), hash(Triple(3, 2, 1)));
}

TEST(VocabularyTest, InternsAllTerms) {
  Dictionary dict;
  const Vocabulary voc = Vocabulary::Intern(dict);
  EXPECT_NE(voc.rdf_type, kAnyTerm);
  EXPECT_NE(voc.rdfs_subclass_of, kAnyTerm);
  EXPECT_NE(voc.rdfs_domain, kAnyTerm);
  EXPECT_NE(voc.rdfs_range, kAnyTerm);
  EXPECT_NE(voc.rdfs_class, kAnyTerm);
  EXPECT_NE(voc.owl_class, kAnyTerm);
  // Idempotent across repeated interning.
  const Vocabulary again = Vocabulary::Intern(dict);
  EXPECT_EQ(voc.rdf_type, again.rdf_type);
}

TEST(VocabularyTest, SchemaPredicateClassification) {
  Dictionary dict;
  const Vocabulary voc = Vocabulary::Intern(dict);
  EXPECT_TRUE(voc.IsSchemaPredicate(voc.rdf_type));
  EXPECT_TRUE(voc.IsSchemaPredicate(voc.rdfs_subclass_of));
  EXPECT_TRUE(voc.IsSchemaPredicate(voc.rdfs_label));
  const TermId custom = dict.InternIri("http://x/knows");
  EXPECT_FALSE(voc.IsSchemaPredicate(custom));
}

}  // namespace
}  // namespace evorec::rdf
