// Round-trip differential properties of the storage layer: randomized
// commit interleavings are made durable (snapshot + commit log),
// recovered from disk, and the recovered KB must be observationally
// byte-identical to the original — same Match results under every
// pattern shape, same triple counts, same N-Triples serialisation,
// and the same content fingerprints (so engine cache keys survive a
// restart, which the last test drives end to end).

#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "evorec.h"

namespace evorec {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "evorec_persist_" + name;
}

rdf::KnowledgeBase MakeBase(uint64_t seed) {
  workload::SchemaGenOptions schema_options;
  schema_options.class_count = 30;
  schema_options.seed = seed;
  workload::GeneratedSchema generated =
      workload::GenerateSchema(schema_options);
  workload::InstanceGenOptions instance_options;
  instance_options.instance_count = 200;
  instance_options.edge_count = 350;
  instance_options.seed = seed + 1;
  workload::PopulateInstances(generated, instance_options);
  return std::move(generated.kb);
}

// Commits `versions` randomized transitions (mix/ops vary per seed and
// step) against `vkb`.
void CommitHistory(version::VersionedKnowledgeBase& vkb, uint64_t seed,
                   uint32_t versions) {
  Rng rng(seed * 977 + 13);
  for (uint32_t v = 0; v < versions; ++v) {
    auto head = vkb.Snapshot(vkb.head());
    ASSERT_TRUE(head.ok());
    workload::EvolutionOptions options;
    options.operations =
        static_cast<size_t>(rng.UniformInt(20, 90));
    options.epoch = v + 1;
    options.seed = seed + 10 + v;
    if (rng.Bernoulli(0.3)) options.mix = workload::ChangeMix::SchemaHeavy();
    workload::EvolutionOutcome outcome = workload::GenerateEvolution(
        **head, vkb.dictionary(), options);
    auto committed =
        vkb.Commit(std::move(outcome.changes), "prop-test",
                   "step " + std::to_string(v), 1700000000 + v);
    ASSERT_TRUE(committed.ok());
  }
}

// The eight pattern shapes instantiated from a concrete triple.
std::vector<rdf::TriplePattern> AllShapes(const rdf::Triple& t) {
  const rdf::TermId any = rdf::kAnyTerm;
  return {{t.subject, t.predicate, t.object},
          {t.subject, t.predicate, any},
          {t.subject, any, t.object},
          {any, t.predicate, t.object},
          {t.subject, any, any},
          {any, t.predicate, any},
          {any, any, t.object},
          {any, any, any}};
}

void ExpectVersionsIdentical(const version::VersionedKnowledgeBase& original,
                             version::VersionId v,
                             const version::VersionedKnowledgeBase& recovered,
                             version::VersionId rv) {
  auto original_handle = original.Handle(v);
  auto recovered_handle = recovered.Handle(rv);
  ASSERT_TRUE(original_handle.ok());
  ASSERT_TRUE(recovered_handle.ok());
  EXPECT_EQ(original_handle->fingerprint, recovered_handle->fingerprint)
      << "fingerprint of version " << v;

  auto original_snapshot = original.Snapshot(v);
  auto recovered_snapshot = recovered.Snapshot(rv);
  ASSERT_TRUE(original_snapshot.ok());
  ASSERT_TRUE(recovered_snapshot.ok());
  const rdf::TripleStore& original_store = (*original_snapshot)->store();
  const rdf::TripleStore& recovered_store = (*recovered_snapshot)->store();

  ASSERT_EQ(original_store.size(), recovered_store.size());
  EXPECT_EQ(original_store.triples(), recovered_store.triples());
  // Byte-identical down to the term content, not just the ids.
  EXPECT_EQ(rdf::WriteNTriples(original_store,
                               (*original_snapshot)->dictionary()),
            rdf::WriteNTriples(recovered_store,
                               (*recovered_snapshot)->dictionary()));

  // All eight pattern shapes, probed at the first / middle / last
  // triple of the version (they exercise all three indexes).
  const std::vector<rdf::Triple>& triples = original_store.triples();
  if (triples.empty()) return;
  for (size_t pick :
       {size_t{0}, triples.size() / 2, triples.size() - 1}) {
    for (const rdf::TriplePattern& pattern : AllShapes(triples[pick])) {
      EXPECT_EQ(original_store.Match(pattern), recovered_store.Match(pattern));
    }
  }
}

class PersistencePropertyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, PersistencePropertyTest,
                         ::testing::Values(3, 17, 59, 211));

// Snapshot taken mid-history + log tail replay: the everyday recovery
// shape ("latest checkpoint + WAL tail").
TEST_P(PersistencePropertyTest, MidHistorySnapshotPlusTailReplay) {
  const uint64_t seed = GetParam();
  const std::string snapshot_path =
      TempPath("mid_" + std::to_string(seed) + ".evsnap");
  const std::string log_path =
      TempPath("mid_" + std::to_string(seed) + ".evlog");
  std::remove(log_path.c_str());

  version::VersionedKnowledgeBase original(
      version::ArchivePolicy::kDeltaChain, MakeBase(seed));
  auto log = storage::CommitLog::Open(log_path);
  ASSERT_TRUE(log.ok());
  original.AttachCommitLog(&*log);
  CommitHistory(original, seed, 6);
  const version::VersionId mid = original.head() - 2;
  ASSERT_TRUE(
      version::SaveVersionSnapshot(original, mid, snapshot_path).ok());
  ASSERT_TRUE(log->Sync().ok());

  auto recovered = version::RecoverFromDisk(snapshot_path, log_path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->base_version, mid);
  EXPECT_EQ(recovered->skipped_records, static_cast<size_t>(mid));
  EXPECT_EQ(recovered->replayed_commits,
            static_cast<size_t>(original.head() - mid));
  ASSERT_EQ(recovered->vkb->head(), original.head() - mid);
  for (version::VersionId v = mid; v <= original.head(); ++v) {
    ExpectVersionsIdentical(original, v, *recovered->vkb, v - mid);
  }

  // The recovered KB keeps working: a fresh commit replays on top.
  auto head = recovered->vkb->Snapshot(recovered->vkb->head());
  ASSERT_TRUE(head.ok());
  workload::EvolutionOptions options;
  options.operations = 25;
  options.epoch = 99;
  options.seed = seed + 99;
  workload::EvolutionOutcome outcome = workload::GenerateEvolution(
      **head, recovered->vkb->dictionary(), options);
  EXPECT_TRUE(recovered->vkb
                  ->Commit(std::move(outcome.changes), "post", "resume")
                  .ok());

  std::remove(snapshot_path.c_str());
  std::remove(log_path.c_str());
}

// Base snapshot + full log replay reproduces the complete fingerprint
// chain, under both recovered archive policies.
TEST_P(PersistencePropertyTest, FullLogReplayRestoresEveryFingerprint) {
  const uint64_t seed = GetParam();
  const std::string snapshot_path =
      TempPath("full_" + std::to_string(seed) + ".evsnap");
  const std::string log_path =
      TempPath("full_" + std::to_string(seed) + ".evlog");
  std::remove(log_path.c_str());

  version::VersionedKnowledgeBase original(
      version::ArchivePolicy::kFullMaterialization, MakeBase(seed));
  ASSERT_TRUE(
      version::SaveVersionSnapshot(original, 0, snapshot_path).ok());
  auto log = storage::CommitLog::Open(log_path);
  ASSERT_TRUE(log.ok());
  original.AttachCommitLog(&*log);
  CommitHistory(original, seed, 5);
  ASSERT_TRUE(log->Sync().ok());

  for (version::ArchivePolicy policy :
       {version::ArchivePolicy::kDeltaChain,
        version::ArchivePolicy::kHybridCheckpoint}) {
    version::RecoveryOptions options;
    options.policy = policy;
    auto recovered =
        version::RecoverFromDisk(snapshot_path, log_path, options);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_EQ(recovered->base_version, 0u);
    ASSERT_EQ(recovered->vkb->version_count(), original.version_count());
    for (version::VersionId v = 0; v <= original.head(); ++v) {
      ExpectVersionsIdentical(original, v, *recovered->vkb, v);
    }
  }
  std::remove(snapshot_path.c_str());
  std::remove(log_path.c_str());
}

// A torn final record (half-written commit) rolls back to the last
// complete commit instead of failing recovery.
TEST_P(PersistencePropertyTest, TornTailRecoversPrefix) {
  const uint64_t seed = GetParam();
  const std::string snapshot_path =
      TempPath("torn_" + std::to_string(seed) + ".evsnap");
  const std::string log_path =
      TempPath("torn_" + std::to_string(seed) + ".evlog");
  std::remove(log_path.c_str());

  version::VersionedKnowledgeBase original(
      version::ArchivePolicy::kDeltaChain, MakeBase(seed));
  ASSERT_TRUE(
      version::SaveVersionSnapshot(original, 0, snapshot_path).ok());
  auto log = storage::CommitLog::Open(log_path);
  ASSERT_TRUE(log.ok());
  original.AttachCommitLog(&*log);
  CommitHistory(original, seed, 4);
  ASSERT_TRUE(log->Close().ok());

  // Tear the last record in half.
  auto bytes = ReadFileToString(log_path);
  ASSERT_TRUE(bytes.ok());
  auto records = storage::ReadLog(log_path);
  ASSERT_TRUE(records.ok());
  const std::string last_record =
      storage::EncodeDeltaRecord(records->back());
  const std::string torn =
      bytes->substr(0, bytes->size() - last_record.size() / 2);
  ASSERT_TRUE(WriteFileAtomic(log_path, torn).ok());

  auto recovered = version::RecoverFromDisk(snapshot_path, log_path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->vkb->head(), original.head() - 1);
  for (version::VersionId v = 0; v < original.head(); ++v) {
    ExpectVersionsIdentical(original, v, *recovered->vkb, v);
  }

  // Strict mode still refuses the same file.
  version::RecoveryOptions strict;
  strict.allow_torn_tail = false;
  EXPECT_FALSE(
      version::RecoverFromDisk(snapshot_path, log_path, strict).ok());

  std::remove(snapshot_path.c_str());
  std::remove(log_path.c_str());
}

// Mixing a snapshot and a log from different histories must fail with
// a clean error, never produce a silently wrong KB.
TEST(PersistenceMismatchTest, ForeignLogIsRejected) {
  const std::string snapshot_path = TempPath("mismatch.evsnap");
  const std::string log_path = TempPath("mismatch.evlog");
  std::remove(log_path.c_str());

  version::VersionedKnowledgeBase history_a(
      version::ArchivePolicy::kDeltaChain, MakeBase(71));
  ASSERT_TRUE(
      version::SaveVersionSnapshot(history_a, 0, snapshot_path).ok());

  version::VersionedKnowledgeBase history_b(
      version::ArchivePolicy::kDeltaChain, MakeBase(72));
  auto log = storage::CommitLog::Open(log_path);
  ASSERT_TRUE(log.ok());
  history_b.AttachCommitLog(&*log);
  CommitHistory(history_b, 72, 3);
  ASSERT_TRUE(log->Close().ok());

  auto recovered = version::RecoverFromDisk(snapshot_path, log_path);
  EXPECT_FALSE(recovered.ok());

  std::remove(snapshot_path.c_str());
  std::remove(log_path.c_str());
}

// The whole point of restoring fingerprints: an engine serving the
// original KB treats the recovered KB as the same cache key — the
// first post-restart request is a hit, not a rebuild.
TEST(PersistenceEngineTest, RecoveredKbHitsTheWarmEngineCache) {
  const std::string snapshot_path = TempPath("engine.evsnap");
  const std::string log_path = TempPath("engine.evlog");
  std::remove(log_path.c_str());

  version::VersionedKnowledgeBase original(
      version::ArchivePolicy::kDeltaChain, MakeBase(5));
  ASSERT_TRUE(
      version::SaveVersionSnapshot(original, 0, snapshot_path).ok());
  auto log = storage::CommitLog::Open(log_path);
  ASSERT_TRUE(log.ok());
  original.AttachCommitLog(&*log);
  CommitHistory(original, 5, 3);
  ASSERT_TRUE(log->Sync().ok());

  auto recovered = version::RecoverFromDisk(snapshot_path, log_path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  const measures::MeasureRegistry registry = measures::DefaultRegistry();
  engine::RecommendationService service(registry);
  const version::VersionId head = original.head();
  ASSERT_TRUE(service.WarmStart(original, head - 1, head).ok());
  EXPECT_EQ(service.engine_stats().contexts_built, 1u);

  // Same versions, recovered instance: cache hit, no rebuild.
  ASSERT_TRUE(
      service.WarmStart(*recovered->vkb, head - 1, head).ok());
  const engine::EngineStats stats = service.engine_stats();
  EXPECT_EQ(stats.contexts_built, 1u);
  EXPECT_GE(stats.context_hits, 1u);

  // And the recommendations themselves are identical.
  profile::HumanProfile user_a("restart-user");
  profile::HumanProfile user_b("restart-user");
  auto head_kb = original.Snapshot(head);
  ASSERT_TRUE(head_kb.ok());
  const schema::SchemaView view = schema::SchemaView::Build(**head_kb);
  if (!view.classes().empty()) {
    user_a.SetInterest(view.classes()[0], 1.0);
    user_b.SetInterest(view.classes()[0], 1.0);
  }
  auto list_a = service.Recommend(original, head - 1, head, user_a);
  auto list_b =
      service.Recommend(*recovered->vkb, head - 1, head, user_b);
  ASSERT_TRUE(list_a.ok());
  ASSERT_TRUE(list_b.ok());
  ASSERT_EQ(list_a->items.size(), list_b->items.size());
  for (size_t i = 0; i < list_a->items.size(); ++i) {
    EXPECT_EQ(list_a->items[i].candidate.id, list_b->items[i].candidate.id);
    EXPECT_DOUBLE_EQ(list_a->items[i].relatedness,
                     list_b->items[i].relatedness);
  }

  std::remove(snapshot_path.c_str());
  std::remove(log_path.c_str());
}

}  // namespace
}  // namespace evorec
