#include "measures/registry.h"

#include <gtest/gtest.h>

#include <set>

#include "measures/change_count.h"

namespace evorec::measures {
namespace {

TEST(RegistryTest, DefaultRegistryHasAllEightMeasures) {
  const MeasureRegistry registry = DefaultRegistry();
  EXPECT_EQ(registry.size(), 8u);
  std::set<std::string> names;
  std::set<MeasureCategory> categories;
  for (const MeasureInfo& info : registry.List()) {
    names.insert(info.name);
    categories.insert(info.category);
    EXPECT_FALSE(info.description.empty());
  }
  EXPECT_EQ(names.size(), 8u);  // unique names
  // All three families represented (§II).
  EXPECT_EQ(categories.size(), 3u);
  EXPECT_TRUE(names.count("class_change_count"));
  EXPECT_TRUE(names.count("property_change_count"));
  EXPECT_TRUE(names.count("neighborhood_change_count"));
  EXPECT_TRUE(names.count("betweenness_shift"));
  EXPECT_TRUE(names.count("bridging_shift"));
  EXPECT_TRUE(names.count("in_centrality_shift"));
  EXPECT_TRUE(names.count("out_centrality_shift"));
  EXPECT_TRUE(names.count("relevance_shift"));
}

TEST(RegistryTest, CreateByName) {
  const MeasureRegistry registry = DefaultRegistry();
  auto measure = registry.Create("relevance_shift");
  ASSERT_TRUE(measure.ok());
  EXPECT_EQ((*measure)->info().name, "relevance_shift");
  EXPECT_FALSE(registry.Create("no_such_measure").ok());
}

TEST(RegistryTest, CreateAllInstantiatesEverything) {
  const MeasureRegistry registry = DefaultRegistry();
  const auto all = registry.CreateAll();
  EXPECT_EQ(all.size(), registry.size());
  for (const auto& measure : all) {
    ASSERT_NE(measure, nullptr);
  }
}

TEST(RegistryTest, DuplicateRegistrationRejected) {
  MeasureRegistry registry;
  EXPECT_TRUE(registry
                  .Register([] {
                    return std::make_unique<ClassChangeCountMeasure>();
                  })
                  .ok());
  const Status dup = registry.Register(
      [] { return std::make_unique<ClassChangeCountMeasure>(); });
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(RegistryTest, NullFactoryRejected) {
  MeasureRegistry registry;
  const Status bad = registry.Register(
      []() -> std::unique_ptr<EvolutionMeasure> { return nullptr; });
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
}

TEST(RegistryTest, CustomMeasureRegistersNextToDefaults) {
  // Applications can extend the default pool (the "additional
  // evolution measures" the paper calls for).
  MeasureRegistry registry = DefaultRegistry();
  EXPECT_TRUE(registry
                  .Register([] {
                    return std::make_unique<ClassChangeCountMeasure>(
                        /*extended=*/false);
                  })
                  .ok());
  EXPECT_EQ(registry.size(), 9u);
  EXPECT_TRUE(registry.Create("class_change_count_direct").ok());
}

}  // namespace
}  // namespace evorec::measures
