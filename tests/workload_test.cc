#include "workload/schema_generator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "delta/low_level_delta.h"
#include "schema/schema_view.h"
#include "workload/evolution_generator.h"
#include "workload/instance_generator.h"
#include "workload/profile_generator.h"
#include "workload/scenarios.h"

namespace evorec::workload {
namespace {

TEST(SchemaGeneratorTest, GeneratesRequestedShape) {
  SchemaGenOptions options;
  options.class_count = 50;
  options.property_count = 20;
  options.root_count = 2;
  const GeneratedSchema generated = GenerateSchema(options);
  EXPECT_EQ(generated.classes.size(), 50u);
  EXPECT_EQ(generated.properties.size(), 20u);

  const schema::SchemaView view = schema::SchemaView::Build(generated.kb);
  EXPECT_EQ(view.classes().size(), 50u);
  EXPECT_EQ(view.properties().size(), 20u);
  EXPECT_TRUE(view.hierarchy().IsAcyclic());
  EXPECT_EQ(view.hierarchy().Roots().size(), 2u);
  // Every property has exactly one domain and range.
  for (rdf::TermId property : generated.properties) {
    EXPECT_EQ(view.DomainsOf(property).size(), 1u);
    EXPECT_EQ(view.RangesOf(property).size(), 1u);
  }
}

TEST(SchemaGeneratorTest, DeterministicPerSeed) {
  SchemaGenOptions options;
  options.seed = 5;
  const GeneratedSchema a = GenerateSchema(options);
  const GeneratedSchema b = GenerateSchema(options);
  EXPECT_EQ(a.kb.store().triples(), b.kb.store().triples());
  options.seed = 6;
  const GeneratedSchema c = GenerateSchema(options);
  EXPECT_NE(a.kb.store().triples(), c.kb.store().triples());
}

TEST(InstanceGeneratorTest, PopulatesSkewedInstances) {
  SchemaGenOptions schema_options;
  schema_options.class_count = 30;
  GeneratedSchema generated = GenerateSchema(schema_options);
  InstanceGenOptions options;
  options.instance_count = 1000;
  options.edge_count = 1500;
  const GeneratedInstances instances = PopulateInstances(generated, options);
  EXPECT_EQ(instances.instance_count, 1000u);
  EXPECT_GT(instances.edge_count, 0u);

  // Skew: the largest class holds well over the uniform share.
  size_t largest = 0;
  for (const auto& [cls, list] : instances.instances_by_class) {
    (void)cls;
    largest = std::max(largest, list.size());
  }
  EXPECT_GT(largest, 1000u / 30u * 3u);

  // Instance edges respect the declared schema (spot check via view).
  const schema::SchemaView view = schema::SchemaView::Build(generated.kb);
  EXPECT_FALSE(view.connections().empty());
}

TEST(EvolutionGeneratorTest, ChangeSetIsConsistentWithSnapshot) {
  SchemaGenOptions schema_options;
  schema_options.class_count = 40;
  GeneratedSchema generated = GenerateSchema(schema_options);
  InstanceGenOptions instance_options;
  instance_options.instance_count = 300;
  instance_options.edge_count = 500;
  PopulateInstances(generated, instance_options);

  EvolutionOptions options;
  options.operations = 200;
  const EvolutionOutcome outcome = GenerateEvolution(
      generated.kb, generated.kb.dictionary(), options);
  EXPECT_FALSE(outcome.changes.empty());
  EXPECT_FALSE(outcome.hot_classes.empty());

  // Every removal names a triple of the base snapshot; no addition
  // already exists.
  for (const rdf::Triple& t : outcome.changes.removals) {
    EXPECT_TRUE(generated.kb.store().Contains(t));
  }
  for (const rdf::Triple& t : outcome.changes.additions) {
    EXPECT_FALSE(generated.kb.store().Contains(t));
  }
  // No triple both added and removed.
  std::vector<rdf::Triple> overlap;
  std::set_intersection(outcome.changes.additions.begin(),
                        outcome.changes.additions.end(),
                        outcome.changes.removals.begin(),
                        outcome.changes.removals.end(),
                        std::back_inserter(overlap));
  EXPECT_TRUE(overlap.empty());
}

TEST(EvolutionGeneratorTest, HotspotsAttractMostOperations) {
  SchemaGenOptions schema_options;
  schema_options.class_count = 60;
  GeneratedSchema generated = GenerateSchema(schema_options);
  InstanceGenOptions instance_options;
  instance_options.instance_count = 600;
  PopulateInstances(generated, instance_options);

  EvolutionOptions options;
  options.operations = 500;
  options.hotspot_fraction = 0.8;
  options.hotspot_count = 3;
  const EvolutionOutcome outcome = GenerateEvolution(
      generated.kb, generated.kb.dictionary(), options);

  size_t hot_ops = 0;
  size_t total_ops = 0;
  for (const auto& [cls, ops] : outcome.ops_per_class) {
    total_ops += ops;
    for (rdf::TermId hot : outcome.hot_classes) {
      if (cls == hot) hot_ops += ops;
    }
  }
  ASSERT_GT(total_ops, 0u);
  // The three planted hot classes (5% of all) should absorb a clear
  // majority share of attributed operations.
  EXPECT_GT(static_cast<double>(hot_ops) / static_cast<double>(total_ops),
            0.4);
}

TEST(EvolutionGeneratorTest, AppliedChangesMatchGroundTruthDirection) {
  SchemaGenOptions schema_options;
  GeneratedSchema generated = GenerateSchema(schema_options);
  InstanceGenOptions instance_options;
  PopulateInstances(generated, instance_options);

  EvolutionOptions options;
  options.operations = 300;
  const EvolutionOutcome outcome = GenerateEvolution(
      generated.kb, generated.kb.dictionary(), options);

  // Apply and verify via low-level delta: the delta equals the change
  // set exactly.
  rdf::KnowledgeBase after = generated.kb;
  after.store().AddAll(outcome.changes.additions);
  for (const rdf::Triple& t : outcome.changes.removals) {
    after.store().Remove(t);
  }
  const delta::LowLevelDelta delta =
      delta::ComputeLowLevelDelta(generated.kb, after);
  EXPECT_EQ(delta.added, outcome.changes.additions);
  EXPECT_EQ(delta.removed, outcome.changes.removals);
}

TEST(ProfileGeneratorTest, InterestsConcentrateOnSubtree) {
  SchemaGenOptions schema_options;
  schema_options.class_count = 60;
  const GeneratedSchema generated = GenerateSchema(schema_options);
  const schema::SchemaView view = schema::SchemaView::Build(generated.kb);
  Rng rng(3);
  ProfileGenOptions options;
  options.interest_count = 8;
  options.subtree_focus = 1.0;  // all interests focal
  rdf::TermId focus = rdf::kAnyTerm;
  const profile::HumanProfile prof =
      GenerateProfile("u", view, options, rng, &focus);
  ASSERT_NE(focus, rdf::kAnyTerm);
  EXPECT_FALSE(prof.interests().empty());
  for (const auto& [term, weight] : prof.interests()) {
    EXPECT_TRUE(view.hierarchy().IsSubclassOf(term, focus))
        << "interest off the focal subtree";
    EXPECT_GT(weight, 0.0);
    EXPECT_LE(weight, 1.0);
  }
}

TEST(ProfileGeneratorTest, GroupOverlapControlsCohesion) {
  SchemaGenOptions schema_options;
  schema_options.class_count = 80;
  const GeneratedSchema generated = GenerateSchema(schema_options);
  const schema::SchemaView view = schema::SchemaView::Build(generated.kb);
  ProfileGenOptions options;
  Rng rng_a(5), rng_b(5);
  const profile::Group disjoint =
      GenerateGroup("g0", 6, 0.0, view, options, rng_a);
  const profile::Group overlapping =
      GenerateGroup("g1", 6, 1.0, view, options, rng_b);
  EXPECT_EQ(disjoint.size(), 6u);
  EXPECT_GT(overlapping.Cohesion(), disjoint.Cohesion());
}

TEST(ScenarioTest, PresetsProduceCommittedHistory) {
  ScenarioScale scale;
  scale.classes = 30;
  scale.instances = 200;
  scale.edges = 300;
  scale.versions = 2;
  scale.operations = 80;
  for (auto make : {MakeDbpediaLike, MakeClinicalKb, MakeSocialFeed}) {
    const Scenario scenario = make(19, scale);
    EXPECT_FALSE(scenario.name.empty());
    EXPECT_GE(scenario.vkb->version_count(), 3u);  // base + ≥2
    EXPECT_FALSE(scenario.hot_classes.empty());
    EXPECT_EQ(scenario.curators.size(), 5u);
    auto head = scenario.vkb->Snapshot(scenario.vkb->head());
    ASSERT_TRUE(head.ok());
    EXPECT_GT((*head)->size(), 0u);
  }
}

TEST(ScenarioTest, ClinicalKbHasEnforceablePolicy) {
  ScenarioScale scale;
  scale.classes = 30;
  scale.instances = 200;
  scale.edges = 300;
  scale.versions = 2;
  scale.operations = 80;
  const Scenario scenario = MakeClinicalKb(29, scale);
  ASSERT_FALSE(scenario.sensitive_classes.empty());
  for (rdf::TermId cls : scenario.sensitive_classes) {
    EXPECT_FALSE(scenario.policy.CheckAccess("random_analyst", cls).ok());
    EXPECT_TRUE(scenario.policy.CheckAccess("dpo", cls).ok());
  }
}

}  // namespace
}  // namespace evorec::workload
