// Segmented-store contracts the concurrent-serving path depends on:
// frozen segments are immutable and shared, snapshot copies are
// segment-list splices (never triple copies), serving reads never
// materialise a flat store, and the segment-preserving storage
// container (storage/segment_io.h) round-trips the exact segment
// structure while rejecting corrupt images.

#include "rdf/segment.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "rdf/triple_store.h"
#include "storage/segment_io.h"

namespace evorec::rdf {
namespace {

// A store whose stack has a large base plus small upper segments with
// tombstones — the shape the size-tiered policy preserves (the small
// freezes stay un-merged against the big base).
TripleStore LayeredStore() {
  TripleStore store;
  for (uint32_t i = 0; i < 400; ++i) {
    store.Add({i, i % 7, i % 13});
  }
  store.Compact();
  store.Add({1000, 1, 1});
  store.Add({1001, 2, 2});
  store.Remove({0, 0, 0});
  store.Compact();
  store.Add({1002, 3, 3});
  store.Remove({7, 0, 7});
  store.Compact();
  return store;
}

TEST(SegmentStoreTest, FrozenSegmentsAreImmutableAcrossLaterMutations) {
  TripleStore store = LayeredStore();
  // Pin the current stack the way a snapshot holder would.
  const std::vector<std::shared_ptr<const Segment>> pinned = store.segments();
  ASSERT_GE(pinned.size(), 2u);
  std::vector<std::vector<Triple>> live_before;
  std::vector<std::vector<Triple>> tombs_before;
  for (const auto& segment : pinned) {
    live_before.push_back(segment->live());
    tombs_before.push_back(segment->tombstones());
  }

  // Hammer the store: the writer's later freezes and merges must build
  // *new* segments, never touch the pinned ones.
  Rng rng(99);
  for (int step = 0; step < 2000; ++step) {
    const Triple t{static_cast<TermId>(rng.UniformInt(0, 500)),
                   static_cast<TermId>(rng.UniformInt(0, 7)),
                   static_cast<TermId>(rng.UniformInt(0, 14))};
    if (rng.Bernoulli(0.6)) {
      store.Add(t);
    } else {
      store.Remove(t);
    }
    if (step % 97 == 0) store.Compact();
  }
  store.PrepareIndexes();

  for (size_t i = 0; i < pinned.size(); ++i) {
    EXPECT_EQ(pinned[i]->live(), live_before[i]) << "segment " << i;
    EXPECT_EQ(pinned[i]->tombstones(), tombs_before[i]) << "segment " << i;
  }
}

TEST(SegmentStoreTest, SnapshotCopySharesSegmentsAndStaysIndependent) {
  TripleStore store = LayeredStore();
  const size_t n = store.size();

  TripleStore snapshot = store;
  // The copy shares the frozen stack by pointer — O(#segments), not
  // O(triples).
  ASSERT_EQ(snapshot.segments().size(), store.segments().size());
  for (size_t i = 0; i < store.segments().size(); ++i) {
    EXPECT_EQ(snapshot.segments()[i].get(), store.segments()[i].get());
  }
  EXPECT_EQ(snapshot.size(), n);

  // Divergence after the copy is invisible to the snapshot.
  store.Add({9000, 1, 1});
  store.Remove({1, 1, 1});
  store.Compact();
  EXPECT_EQ(snapshot.size(), n);
  EXPECT_FALSE(snapshot.Contains({9000, 1, 1}));
  snapshot.Add({9001, 2, 2});
  EXPECT_FALSE(store.Contains({9001, 2, 2}));
}

TEST(SegmentStoreTest, ServingReadsNeverMaterializeAFlatCopy) {
  TripleStore store = LayeredStore();
  ASSERT_GE(store.segments().size(), 2u);

  // The serving diet: point probes, s-bound scans, full merged scans,
  // secondary-index scans, plus a snapshot copy. None of it may
  // flatten the stack.
  EXPECT_TRUE(store.Contains({5, 5, 5}));
  (void)store.Match({3, kAnyTerm, kAnyTerm});
  (void)store.Match({kAnyTerm, 1, kAnyTerm});
  (void)store.Match({kAnyTerm, kAnyTerm, 2});
  size_t scanned = 0;
  store.ScanT({kAnyTerm, kAnyTerm, kAnyTerm}, [&](const Triple&) {
    ++scanned;
    return true;
  });
  EXPECT_EQ(scanned, store.size());
  TripleStore snapshot = store;
  EXPECT_TRUE(snapshot.Contains({5, 5, 5}));
  EXPECT_EQ(store.stats().materializations, 0u);
  EXPECT_EQ(snapshot.stats().materializations, 0u);

  // triples() on a multi-segment stack is the one flattening entry
  // point — and it says so in the counter.
  (void)store.triples();
  EXPECT_EQ(store.stats().materializations, 1u);
}

TEST(SegmentIoTest, RoundTripPreservesSegmentStructure) {
  TripleStore store = LayeredStore();
  const std::string image = storage::EncodeSegments(store);
  ASSERT_TRUE(storage::LooksLikeSegments(image));

  // Ids in LayeredStore stay below 1003; decode against a table
  // comfortably covering them.
  auto decoded = storage::DecodeSegments(image, /*term_count=*/2000);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  // Not just the same triples — the same *stack*: segment count and
  // per-segment live/tombstone runs all survive.
  ASSERT_EQ(decoded->segments().size(), store.segments().size());
  for (size_t i = 0; i < store.segments().size(); ++i) {
    EXPECT_EQ(decoded->segments()[i]->live(), store.segments()[i]->live());
    EXPECT_EQ(decoded->segments()[i]->tombstones(),
              store.segments()[i]->tombstones());
  }
  EXPECT_EQ(decoded->size(), store.size());
  EXPECT_EQ(decoded->triples(), store.triples());
}

TEST(SegmentIoTest, RoundTripsRandomHistories) {
  for (uint64_t seed : {3u, 71u, 20260807u}) {
    Rng rng(seed);
    TripleStore store;
    std::set<Triple> model;
    for (int step = 0; step < 1500; ++step) {
      const Triple t{static_cast<TermId>(rng.UniformInt(0, 60)),
                     static_cast<TermId>(rng.UniformInt(0, 6)),
                     static_cast<TermId>(rng.UniformInt(0, 60))};
      if (rng.Bernoulli(0.7)) {
        store.Add(t);
        model.insert(t);
      } else {
        store.Remove(t);
        model.erase(t);
      }
      if (step % 211 == 0) store.Compact();
    }
    auto decoded =
        storage::DecodeSegments(storage::EncodeSegments(store), 64);
    ASSERT_TRUE(decoded.ok()) << "seed " << seed;
    EXPECT_EQ(decoded->size(), model.size()) << "seed " << seed;
    EXPECT_EQ(decoded->triples(),
              std::vector<Triple>(model.begin(), model.end()))
        << "seed " << seed;
  }
}

TEST(SegmentIoTest, RejectsCorruptImages) {
  TripleStore store = LayeredStore();
  const std::string image = storage::EncodeSegments(store);

  // Wrong magic is "not this container", not a crash.
  std::string wrong_magic = image;
  wrong_magic[7] = '9';
  EXPECT_FALSE(storage::LooksLikeSegments(wrong_magic));
  EXPECT_FALSE(storage::DecodeSegments(wrong_magic, 2000).ok());

  // Every truncation point must be detected.
  for (size_t len : {4u, 20u, 35u, 60u}) {
    EXPECT_FALSE(storage::DecodeSegments(image.substr(0, len), 2000).ok())
        << "truncated to " << len;
  }
  EXPECT_FALSE(
      storage::DecodeSegments(image.substr(0, image.size() - 3), 2000).ok());

  // Trailing garbage after the last segment.
  EXPECT_FALSE(storage::DecodeSegments(image + "xx", 2000).ok());

  // A flipped payload byte trips a CRC (or, where the flip lands in a
  // length field, a framing error) — never an accepted wrong store.
  for (size_t pos : std::vector<size_t>{12, 40, image.size() / 2,
                                        image.size() - 10}) {
    std::string corrupt = image;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x5A);
    EXPECT_FALSE(storage::DecodeSegments(corrupt, 2000).ok())
        << "flip at " << pos;
  }

  // Ids beyond the caller's term table are rejected, not adopted.
  EXPECT_FALSE(storage::DecodeSegments(image, /*term_count=*/10).ok());
}

TEST(SegmentIoTest, AcceptsEmptyStore) {
  TripleStore empty;
  auto decoded = storage::DecodeSegments(storage::EncodeSegments(empty), 0);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->size(), 0u);
}

}  // namespace
}  // namespace evorec::rdf
