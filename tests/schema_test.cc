#include "schema/schema_view.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "schema/hierarchy.h"

namespace evorec::schema {
namespace {

using rdf::KnowledgeBase;
using rdf::kAnyTerm;
using rdf::TermId;

// Builds the small ontology used across schema tests:
//   Person ⊒ Student;  City
//   worksIn: Person → City,  knows: Person → Person
//   alice,bob: Person;  carol: Student;  rome: City
//   alice worksIn rome; alice knows bob; bob knows alice
struct Fixture {
  KnowledgeBase kb;
  TermId person, student, city, works_in, knows;
  TermId alice, bob, carol, rome;

  Fixture() {
    person = kb.DeclareClass("http://x/Person");
    student = kb.DeclareClass("http://x/Student");
    city = kb.DeclareClass("http://x/City");
    kb.AddIriTriple("http://x/Student",
                    "http://www.w3.org/2000/01/rdf-schema#subClassOf",
                    "http://x/Person");
    works_in = kb.DeclareProperty("http://x/worksIn", "http://x/Person",
                                  "http://x/City");
    knows = kb.DeclareProperty("http://x/knows", "http://x/Person",
                               "http://x/Person");
    kb.AddIriTriple("http://x/alice",
                    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
                    "http://x/Person");
    kb.AddIriTriple("http://x/bob",
                    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
                    "http://x/Person");
    kb.AddIriTriple("http://x/carol",
                    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
                    "http://x/Student");
    kb.AddIriTriple("http://x/rome",
                    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
                    "http://x/City");
    kb.AddIriTriple("http://x/alice", "http://x/worksIn", "http://x/rome");
    kb.AddIriTriple("http://x/alice", "http://x/knows", "http://x/bob");
    kb.AddIriTriple("http://x/bob", "http://x/knows", "http://x/alice");
    alice = kb.dictionary().Find(rdf::Term::Iri("http://x/alice"));
    bob = kb.dictionary().Find(rdf::Term::Iri("http://x/bob"));
    carol = kb.dictionary().Find(rdf::Term::Iri("http://x/carol"));
    rome = kb.dictionary().Find(rdf::Term::Iri("http://x/rome"));
  }
};

TEST(SchemaViewTest, ExtractsClassesAndProperties) {
  Fixture f;
  const SchemaView view = SchemaView::Build(f.kb);
  EXPECT_TRUE(view.IsClass(f.person));
  EXPECT_TRUE(view.IsClass(f.student));
  EXPECT_TRUE(view.IsClass(f.city));
  EXPECT_FALSE(view.IsClass(f.alice));
  EXPECT_TRUE(view.IsProperty(f.works_in));
  EXPECT_TRUE(view.IsProperty(f.knows));
  EXPECT_FALSE(view.IsProperty(f.person));
  EXPECT_EQ(view.classes().size(), 3u);
  EXPECT_EQ(view.properties().size(), 2u);
}

TEST(SchemaViewTest, DomainRangeAndHierarchy) {
  Fixture f;
  const SchemaView view = SchemaView::Build(f.kb);
  EXPECT_EQ(view.DomainsOf(f.works_in), std::vector<TermId>{f.person});
  EXPECT_EQ(view.RangesOf(f.works_in), std::vector<TermId>{f.city});
  EXPECT_TRUE(view.hierarchy().IsSubclassOf(f.student, f.person));
  EXPECT_FALSE(view.hierarchy().IsSubclassOf(f.person, f.student));
}

TEST(SchemaViewTest, InstanceAccounting) {
  Fixture f;
  const SchemaView view = SchemaView::Build(f.kb);
  EXPECT_EQ(view.InstanceCount(f.person), 2u);
  EXPECT_EQ(view.InstanceCount(f.student), 1u);
  EXPECT_EQ(view.InstanceCount(f.city), 1u);
  EXPECT_EQ(view.TypeOf(f.alice), f.person);
  EXPECT_EQ(view.TypeOf(f.carol), f.student);
  EXPECT_EQ(view.TypeOf(f.person), kAnyTerm);  // classes are not typed
}

TEST(SchemaViewTest, ConnectionStatistics) {
  Fixture f;
  const SchemaView view = SchemaView::Build(f.kb);
  // alice worksIn rome: Person → City once.
  EXPECT_EQ(view.ConnectionCount(f.works_in, f.person, f.city), 1u);
  // knows: Person → Person twice.
  EXPECT_EQ(view.ConnectionCount(f.knows, f.person, f.person), 2u);
  EXPECT_EQ(view.ConnectionCount(f.works_in, f.city, f.person), 0u);
  // Totals: person participates in 1 (worksIn) + 2 (knows) = 3
  // connections; self-pair counted once each.
  EXPECT_EQ(view.TotalConnectionsOf(f.person), 3u);
  EXPECT_EQ(view.TotalConnectionsOf(f.city), 1u);
}

TEST(SchemaViewTest, NeighborhoodCombinesSubsumptionAndProperties) {
  Fixture f;
  const SchemaView view = SchemaView::Build(f.kb);
  const auto person_neighbors = view.Neighborhood(f.person);
  // Student (subclass) and City (via worksIn domain/range).
  EXPECT_NE(std::find(person_neighbors.begin(), person_neighbors.end(),
                      f.student),
            person_neighbors.end());
  EXPECT_NE(
      std::find(person_neighbors.begin(), person_neighbors.end(), f.city),
      person_neighbors.end());
  // Self never appears even with self-loop property (knows).
  EXPECT_EQ(
      std::find(person_neighbors.begin(), person_neighbors.end(), f.person),
      person_neighbors.end());
}

TEST(SchemaViewTest, PropertiesTouching) {
  Fixture f;
  const SchemaView view = SchemaView::Build(f.kb);
  const auto touching = view.PropertiesTouching(f.city);
  ASSERT_EQ(touching.size(), 1u);
  EXPECT_EQ(touching[0], f.works_in);
  const auto person_touching = view.PropertiesTouching(f.person);
  EXPECT_EQ(person_touching.size(), 2u);
}

// ----------------------------------------------------- ClassHierarchy

TEST(ClassHierarchyTest, AncestorsAndDescendants) {
  //      0
  //     / \.
  //    1   2
  //    |
  //    3
  ClassHierarchy h;
  h.AddEdge(1, 0);
  h.AddEdge(2, 0);
  h.AddEdge(3, 1);
  EXPECT_EQ(h.Ancestors(3), (std::vector<TermId>{0, 1}));
  EXPECT_EQ(h.Descendants(0), (std::vector<TermId>{1, 2, 3}));
  EXPECT_TRUE(h.Ancestors(0).empty());
  EXPECT_TRUE(h.Descendants(3).empty());
}

TEST(ClassHierarchyTest, IsSubclassOfIsReflexiveTransitive) {
  ClassHierarchy h;
  h.AddEdge(1, 0);
  h.AddEdge(2, 1);
  EXPECT_TRUE(h.IsSubclassOf(2, 2));
  EXPECT_TRUE(h.IsSubclassOf(2, 1));
  EXPECT_TRUE(h.IsSubclassOf(2, 0));
  EXPECT_FALSE(h.IsSubclassOf(0, 2));
}

TEST(ClassHierarchyTest, RootsAndDepth) {
  ClassHierarchy h;
  h.AddEdge(1, 0);
  h.AddEdge(2, 1);
  h.Touch(7);  // isolated class
  EXPECT_EQ(h.Roots(), (std::vector<TermId>{0, 7}));
  EXPECT_EQ(h.DepthOf(0), 0u);
  EXPECT_EQ(h.DepthOf(1), 1u);
  EXPECT_EQ(h.DepthOf(2), 2u);
  EXPECT_EQ(h.DepthOf(7), 0u);
}

TEST(ClassHierarchyTest, UndirectedDistance) {
  ClassHierarchy h;
  h.AddEdge(1, 0);
  h.AddEdge(2, 0);
  h.Touch(9);
  EXPECT_EQ(h.UndirectedDistance(1, 1), 0u);
  EXPECT_EQ(h.UndirectedDistance(1, 0), 1u);
  EXPECT_EQ(h.UndirectedDistance(1, 2), 2u);
  EXPECT_EQ(h.UndirectedDistance(1, 9),
            std::numeric_limits<size_t>::max());
}

TEST(ClassHierarchyTest, CycleDetection) {
  ClassHierarchy acyclic;
  acyclic.AddEdge(1, 0);
  acyclic.AddEdge(2, 1);
  EXPECT_TRUE(acyclic.IsAcyclic());

  ClassHierarchy cyclic;
  cyclic.AddEdge(1, 0);
  cyclic.AddEdge(0, 2);
  cyclic.AddEdge(2, 1);
  EXPECT_FALSE(cyclic.IsAcyclic());
}

TEST(ClassHierarchyTest, DuplicateAndSelfEdgesIgnored) {
  ClassHierarchy h;
  h.AddEdge(1, 0);
  h.AddEdge(1, 0);
  h.AddEdge(5, 5);
  EXPECT_EQ(h.edge_count(), 1u);
  EXPECT_EQ(h.Parents(1).size(), 1u);
}

TEST(ClassHierarchyTest, MultipleParentsSupported) {
  ClassHierarchy h;
  h.AddEdge(2, 0);
  h.AddEdge(2, 1);
  EXPECT_EQ(h.Parents(2).size(), 2u);
  EXPECT_TRUE(h.IsSubclassOf(2, 0));
  EXPECT_TRUE(h.IsSubclassOf(2, 1));
  EXPECT_TRUE(h.IsAcyclic());
}

}  // namespace
}  // namespace evorec::schema
