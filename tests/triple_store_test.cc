#include "rdf/triple_store.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"

namespace evorec::rdf {
namespace {

TripleStore MakeStore(std::vector<Triple> triples) {
  TripleStore store;
  store.AddAll(triples);
  return store;
}

TEST(TripleStoreTest, EmptyStore) {
  TripleStore store;
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.empty());
  EXPECT_TRUE(store.Match({}).empty());
}

TEST(TripleStoreTest, AddDeduplicates) {
  TripleStore store = MakeStore({{1, 2, 3}, {1, 2, 3}, {1, 2, 4}});
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.Contains({1, 2, 3}));
  EXPECT_TRUE(store.Contains({1, 2, 4}));
  EXPECT_FALSE(store.Contains({4, 2, 1}));
}

TEST(TripleStoreTest, RemoveDeletes) {
  TripleStore store = MakeStore({{1, 2, 3}, {1, 2, 4}});
  store.Remove({1, 2, 3});
  EXPECT_EQ(store.size(), 1u);
  EXPECT_FALSE(store.Contains({1, 2, 3}));
  // Removing an absent triple is a no-op.
  store.Remove({9, 9, 9});
  EXPECT_EQ(store.size(), 1u);
}

TEST(TripleStoreTest, AddAndRemoveSameBatchNetsToAbsent) {
  TripleStore store;
  store.Add({1, 2, 3});
  store.Remove({1, 2, 3});
  EXPECT_FALSE(store.Contains({1, 2, 3}));
  EXPECT_EQ(store.size(), 0u);
}

// Regression: buffered operations must obey per-triple order — an Add
// after a Remove in the same batch leaves the triple present. (The
// original buffered implementation applied all adds before all
// removes, silently dropping re-added triples; delta-chain replay
// depends on last-wins semantics.)
TEST(TripleStoreTest, LastOperationWinsWithinBatch) {
  TripleStore store;
  store.Remove({1, 2, 3});  // absent: no-op
  store.Add({1, 2, 3});
  EXPECT_TRUE(store.Contains({1, 2, 3}));

  TripleStore store2;
  store2.Add({1, 2, 3});
  store2.Compact();
  // remove → add → remove within one batch ends absent.
  store2.Remove({1, 2, 3});
  store2.Add({1, 2, 3});
  store2.Remove({1, 2, 3});
  EXPECT_FALSE(store2.Contains({1, 2, 3}));

  TripleStore store3;
  store3.Add({1, 2, 3});
  store3.Compact();
  // remove → add ends present.
  store3.Remove({1, 2, 3});
  store3.Add({1, 2, 3});
  EXPECT_TRUE(store3.Contains({1, 2, 3}));
  EXPECT_EQ(store3.size(), 1u);
}

TEST(TripleStoreTest, MatchAllEightPatternShapes) {
  // Triples over subjects {1,2}, predicates {10,11}, objects {20,21}.
  TripleStore store = MakeStore({
      {1, 10, 20}, {1, 10, 21}, {1, 11, 20}, {2, 10, 20}, {2, 11, 21}});
  const TermId any = kAnyTerm;

  EXPECT_EQ(store.Match({any, any, any}).size(), 5u);           // ***
  EXPECT_EQ(store.Match({1, any, any}).size(), 3u);             // s**
  EXPECT_EQ(store.Match({any, 10, any}).size(), 3u);            // *p*
  EXPECT_EQ(store.Match({any, any, 20}).size(), 3u);            // **o
  EXPECT_EQ(store.Match({1, 10, any}).size(), 2u);              // sp*
  EXPECT_EQ(store.Match({1, any, 20}).size(), 2u);              // s*o
  EXPECT_EQ(store.Match({any, 10, 20}).size(), 2u);             // *po
  EXPECT_EQ(store.Match({2, 11, 21}).size(), 1u);               // spo
  EXPECT_TRUE(store.Match({3, 10, 20}).empty());
}

TEST(TripleStoreTest, MatchResultsAreSortedSpo) {
  TripleStore store = MakeStore({{3, 1, 1}, {1, 1, 1}, {2, 1, 1}});
  const auto result = store.Match({kAnyTerm, 1, kAnyTerm});
  ASSERT_EQ(result.size(), 3u);
  EXPECT_LT(result[0], result[1]);
  EXPECT_LT(result[1], result[2]);
}

TEST(TripleStoreTest, ScanEarlyStop) {
  TripleStore store = MakeStore({{1, 1, 1}, {1, 1, 2}, {1, 1, 3}});
  size_t visited = 0;
  store.Scan({1, 1, kAnyTerm}, [&](const Triple&) {
    ++visited;
    return visited < 2;
  });
  EXPECT_EQ(visited, 2u);
}

TEST(TripleStoreTest, DifferenceComputesDeltas) {
  TripleStore before = MakeStore({{1, 1, 1}, {2, 2, 2}, {3, 3, 3}});
  TripleStore after = MakeStore({{2, 2, 2}, {3, 3, 3}, {4, 4, 4}});
  const auto added = TripleStore::Difference(after, before);
  const auto removed = TripleStore::Difference(before, after);
  ASSERT_EQ(added.size(), 1u);
  EXPECT_EQ(added[0], Triple(4, 4, 4));
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], Triple(1, 1, 1));
}

TEST(TripleStoreTest, CopyIsIndependent) {
  TripleStore a = MakeStore({{1, 1, 1}});
  TripleStore b = a;
  b.Add({2, 2, 2});
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 2u);
}

TEST(TripleStoreTest, InterleavedMutationsAndReads) {
  TripleStore store;
  for (uint32_t i = 0; i < 100; ++i) {
    store.Add({i, i % 7, i % 13});
    if (i % 3 == 0) {
      EXPECT_TRUE(store.Contains({i, i % 7, i % 13}));
    }
  }
  EXPECT_EQ(store.size(), 100u);
  for (uint32_t i = 0; i < 100; i += 2) {
    store.Remove({i, i % 7, i % 13});
  }
  EXPECT_EQ(store.size(), 50u);
}

// Randomised differential test against a std::set reference model.
TEST(TripleStoreTest, MatchesReferenceModelUnderRandomOps) {
  Rng rng(99);
  TripleStore store;
  std::set<Triple> reference;
  for (int op = 0; op < 2000; ++op) {
    const Triple t(static_cast<TermId>(rng.UniformInt(0, 9)),
                   static_cast<TermId>(rng.UniformInt(0, 4)),
                   static_cast<TermId>(rng.UniformInt(0, 9)));
    if (rng.Bernoulli(0.7)) {
      store.Add(t);
      reference.insert(t);
    } else {
      store.Remove(t);
      reference.erase(t);
    }
    if (op % 97 == 0) {
      EXPECT_EQ(store.size(), reference.size());
    }
  }
  EXPECT_EQ(store.size(), reference.size());
  for (const Triple& t : reference) {
    EXPECT_TRUE(store.Contains(t));
  }
  // Pattern results agree with reference filtering.
  for (TermId p = 0; p < 5; ++p) {
    const auto got = store.Match({kAnyTerm, p, kAnyTerm});
    size_t expected = 0;
    for (const Triple& t : reference) {
      if (t.predicate == p) ++expected;
    }
    EXPECT_EQ(got.size(), expected);
  }
}

}  // namespace
}  // namespace evorec::rdf
