// Unit coverage of the fault-injection environment and the storage
// primitives hardened against it: FaultInjectionEnv's power-loss
// semantics, WriteFileAtomic's no-stray-temps / old-or-new contract
// under injected ENOSPC-class failures, CommitLog's partial-append
// repair, and the deterministic retry/backoff schedule (asserted on
// the environment's recorded sleeps — no wall clock anywhere).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "evorec.h"

namespace evorec {
namespace {

using storage::FaultInjectionEnv;
using storage::FaultPlan;

Status WriteWholeFile(Env* env, const std::string& path,
                      std::string_view data, bool sync) {
  auto file = env->NewWritableFile(path);
  if (!file.ok()) return file.status();
  EVOREC_RETURN_IF_ERROR((*file)->Append(data));
  if (sync) EVOREC_RETURN_IF_ERROR((*file)->Sync());
  return (*file)->Close();
}

TEST(FaultEnvTest, WriteSyncReadRoundTrip) {
  FaultInjectionEnv env;
  ASSERT_TRUE(WriteWholeFile(&env, "a.bin", "hello world", true).ok());
  EXPECT_TRUE(env.FileExists("a.bin"));
  auto size = env.FileSize("a.bin");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 11u);
  auto bytes = env.ReadFileToString("a.bin");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "hello world");
}

TEST(FaultEnvTest, CrashDropsUnsyncedBytesAndKeepsSyncedPrefix) {
  FaultInjectionEnv env;
  auto file = env.NewWritableFile("log.bin", false);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("durable").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append("-volatile").ok());

  env.CrashNow();
  EXPECT_TRUE(env.down());
  // Everything fails while down.
  EXPECT_EQ(env.FileSize("log.bin").status().code(),
            StatusCode::kUnavailable);

  env.Restart();
  auto bytes = env.ReadFileToString("log.bin");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "durable");
  // The pre-crash handle is permanently dead, like an fd of a killed
  // process.
  EXPECT_EQ((*file)->Append("zombie").code(),
            StatusCode::kFailedPrecondition);
}

TEST(FaultEnvTest, CrashRemovesNeverSyncedFiles) {
  FaultInjectionEnv env;
  ASSERT_TRUE(WriteWholeFile(&env, "gone.bin", "bytes", false).ok());
  env.CrashNow();
  env.Restart();
  EXPECT_FALSE(env.FileExists("gone.bin"));
}

TEST(FaultEnvTest, RenameIsVolatileUntilDirectorySync) {
  // target holds durable "old"; a synced temp renamed over it is only
  // crash-safe after the directory sync — exactly the window
  // WriteFileAtomic closes.
  FaultInjectionEnv env;
  ASSERT_TRUE(env.CreateDir("d").ok());
  ASSERT_TRUE(WriteWholeFile(&env, "d/target", "old", true).ok());
  ASSERT_TRUE(WriteWholeFile(&env, "d/tmp", "new", true).ok());
  ASSERT_TRUE(env.RenameFile("d/tmp", "d/target").ok());

  env.CrashNow();
  env.Restart();
  auto bytes = env.ReadFileToString("d/target");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "old");  // rolled back: rename never became durable
  EXPECT_FALSE(env.FileExists("d/tmp"));

  // Same dance with the directory sync: the rename sticks.
  ASSERT_TRUE(WriteWholeFile(&env, "d/tmp", "new", true).ok());
  ASSERT_TRUE(env.RenameFile("d/tmp", "d/target").ok());
  ASSERT_TRUE(env.SyncDir("d").ok());
  env.CrashNow();
  env.Restart();
  bytes = env.ReadFileToString("d/target");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "new");
}

TEST(FaultEnvTest, ScriptedFailuresCountDownAndDisarm) {
  FaultInjectionEnv env;
  FaultPlan plan;
  plan.fail_writes = 2;
  env.set_plan(plan);
  auto file = env.NewWritableFile("f.bin", false);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->Append("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ((*file)->Append("x").code(), StatusCode::kUnavailable);
  EXPECT_TRUE((*file)->Append("x").ok());  // countdown exhausted
  EXPECT_EQ(env.counters().injected_errors, 2u);
}

TEST(FaultEnvTest, LyingSyncReportsSuccessButDropsDataOnCrash) {
  FaultInjectionEnv env;
  FaultPlan plan;
  plan.lying_syncs = 1;
  env.set_plan(plan);
  auto file = env.NewWritableFile("lie.bin", false);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("acked-but-volatile").ok());
  ASSERT_TRUE((*file)->Sync().ok());  // the lie
  EXPECT_EQ(env.counters().lied_syncs, 1u);

  env.CrashNow();
  env.Restart();
  // The file was never truly durable; the "synced" bytes are gone.
  EXPECT_FALSE(env.FileExists("lie.bin"));
}

TEST(FaultEnvTest, CrashAtOpFiresOnceAtTheExactOperation) {
  FaultInjectionEnv env;
  FaultPlan plan;
  plan.crash_at_op = 2;  // first write survives, second one is the cut
  env.set_plan(plan);
  auto file = env.NewWritableFile("f.bin", false);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("one").ok());
  EXPECT_EQ((*file)->Append("two").code(), StatusCode::kUnavailable);
  EXPECT_TRUE(env.down());
  EXPECT_EQ(env.counters().crashes, 1u);
}

// ---- WriteFileAtomic under injected failures (satellite: temp-file
// leak + previous-snapshot-intact) ----

class AtomicWriteFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(env_.CreateDir("snaps").ok());
    ASSERT_TRUE(
        WriteFileAtomic("snaps/current", "generation-1", true, &env_).ok());
  }

  std::vector<std::string> Listing() {
    auto names = env_.ListDir("snaps");
    return names.ok() ? *names : std::vector<std::string>{};
  }

  FaultInjectionEnv env_;
};

TEST_F(AtomicWriteFaultTest, FailedWriteLeavesTargetIntactAndNoTemps) {
  FaultPlan plan;
  plan.fail_writes = 1;  // models ENOSPC mid-snapshot
  env_.set_plan(plan);
  const Status failed =
      WriteFileAtomic("snaps/current", "generation-2", true, &env_);
  EXPECT_EQ(failed.code(), StatusCode::kUnavailable);

  auto bytes = env_.ReadFileToString("snaps/current");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "generation-1");  // previous snapshot byte-identical
  EXPECT_EQ(Listing(), std::vector<std::string>{"current"});  // no .tmp
}

TEST_F(AtomicWriteFaultTest, FailedSyncLeavesTargetIntactAndNoTemps) {
  FaultPlan plan;
  plan.fail_syncs = 1;
  env_.set_plan(plan);
  EXPECT_FALSE(
      WriteFileAtomic("snaps/current", "generation-2", true, &env_).ok());
  auto bytes = env_.ReadFileToString("snaps/current");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "generation-1");
  EXPECT_EQ(Listing(), std::vector<std::string>{"current"});
}

TEST_F(AtomicWriteFaultTest, FailedRenameLeavesTargetIntactAndNoTemps) {
  FaultPlan plan;
  plan.fail_renames = 1;
  env_.set_plan(plan);
  EXPECT_FALSE(
      WriteFileAtomic("snaps/current", "generation-2", true, &env_).ok());
  auto bytes = env_.ReadFileToString("snaps/current");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "generation-1");
  EXPECT_EQ(Listing(), std::vector<std::string>{"current"});
}

TEST_F(AtomicWriteFaultTest, CrashBetweenRenameAndDirSyncKeepsOldBytes) {
  // Mutating ops of a synced WriteFileAtomic: write(1) sync(2)
  // rename(3) dir_sync(4). Crash at the dir sync: the directory entry
  // never became durable, so the old generation must come back.
  FaultPlan plan;
  plan.crash_at_op = 4;
  env_.set_plan(plan);
  EXPECT_FALSE(
      WriteFileAtomic("snaps/current", "generation-2", true, &env_).ok());
  env_.Restart();
  auto bytes = env_.ReadFileToString("snaps/current");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "generation-1");
}

// ---- CommitLog under injected failures (satellite: partial-append
// hazard) ----

storage::DeltaRecord MakeRecord(uint32_t version_id) {
  storage::DeltaRecord record;
  record.version_id = version_id;
  record.timestamp = 1700000000 + version_id;
  record.author = "fault-test";
  record.message = "record " + std::to_string(version_id);
  record.fingerprint = 0x9E3779B97F4A7C15ULL * version_id;
  return record;
}

TEST(CommitLogFaultTest, PartialAppendIsTruncatedBeforeTheNextAppend) {
  FaultInjectionEnv env;
  storage::LogOptions options;
  options.env = &env;
  options.retry.max_attempts = 1;  // isolate the repair from the retry
  auto log = storage::CommitLog::Open("wal.evlog", options);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log->Append(MakeRecord(1)).ok());
  const uint64_t good = log->good_size();

  FaultPlan plan;
  plan.short_writes = 1;  // half the record lands, then the error
  env.set_plan(plan);
  EXPECT_FALSE(log->Append(MakeRecord(2)).ok());
  EXPECT_TRUE(log->tail_dirty());
  auto size = env.FileSize("wal.evlog");
  ASSERT_TRUE(size.ok());
  EXPECT_GT(*size, good);  // the partial bytes are really there

  // Tolerant replay right now sees only the intact prefix.
  storage::ReplayOptions tolerant;
  tolerant.allow_torn_tail = true;
  tolerant.env = &env;
  auto before_repair = storage::ReadLog("wal.evlog", tolerant);
  ASSERT_TRUE(before_repair.ok());
  ASSERT_EQ(before_repair->size(), 1u);

  // The next append repairs the tail first: afterwards even a strict
  // reader sees exactly records 1 and 3 — no torn bytes mid-log.
  env.ClearFaults();
  ASSERT_TRUE(log->Append(MakeRecord(3)).ok());
  EXPECT_FALSE(log->tail_dirty());
  storage::ReplayOptions strict;
  strict.env = &env;
  auto records = storage::ReadLog("wal.evlog", strict);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].version_id, 1u);
  EXPECT_EQ((*records)[1].version_id, 3u);
  size = env.FileSize("wal.evlog");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, log->good_size());
}

TEST(CommitLogFaultTest, FailedFsyncNeverDuplicatesTheRecord) {
  // A record whose fsync fails is complete on disk but was never
  // acknowledged. The retried append must first truncate it, or the
  // log would carry the same version twice.
  FaultInjectionEnv env;
  storage::LogOptions options;
  options.env = &env;
  options.sync_on_append = true;
  options.retry.max_attempts = 3;
  auto log = storage::CommitLog::Open("wal.evlog", options);
  ASSERT_TRUE(log.ok());

  FaultPlan plan;
  plan.fail_syncs = 1;
  env.set_plan(plan);
  ASSERT_TRUE(log->Append(MakeRecord(1)).ok());  // retried internally

  storage::ReplayOptions strict;
  strict.env = &env;
  auto records = storage::ReadLog("wal.evlog", strict);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 1u);  // exactly once
  EXPECT_EQ((*records)[0].version_id, 1u);
}

TEST(CommitLogFaultTest, ShortWriteRecoversWithinTheRetryBudget) {
  FaultInjectionEnv env;
  storage::LogOptions options;
  options.env = &env;
  options.retry.max_attempts = 4;
  auto log = storage::CommitLog::Open("wal.evlog", options);
  ASSERT_TRUE(log.ok());

  FaultPlan plan;
  plan.short_writes = 2;
  env.set_plan(plan);
  ASSERT_TRUE(log->Append(MakeRecord(1)).ok());
  storage::ReplayOptions strict;
  strict.env = &env;
  auto records = storage::ReadLog("wal.evlog", strict);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
}

// ---- Retry/backoff schedule (satellite: deterministic, injected
// clock, bounded, corruption never retried) ----

TEST(RetryBackoffTest, ExponentialSpacingOnTheInjectedClock) {
  FaultInjectionEnv env;
  storage::LogOptions options;
  options.env = &env;
  options.retry.max_attempts = 4;
  options.retry.backoff_micros = 1000;
  options.retry.backoff_multiplier = 2;
  auto log = storage::CommitLog::Open("wal.evlog", options);
  ASSERT_TRUE(log.ok());

  FaultPlan plan;
  plan.fail_writes = 3;  // attempts 1-3 fail, 4 succeeds
  env.set_plan(plan);
  ASSERT_TRUE(log->Append(MakeRecord(1)).ok());
  EXPECT_EQ(env.recorded_sleeps(),
            (std::vector<uint64_t>{1000, 2000, 4000}));
}

TEST(RetryBackoffTest, AttemptsAreBounded) {
  FaultInjectionEnv env;
  storage::LogOptions options;
  options.env = &env;
  options.retry.max_attempts = 3;
  auto log = storage::CommitLog::Open("wal.evlog", options);
  ASSERT_TRUE(log.ok());

  FaultPlan plan;
  plan.fail_writes = 100;  // never recovers
  env.set_plan(plan);
  const Status failed = log->Append(MakeRecord(1));
  EXPECT_EQ(failed.code(), StatusCode::kUnavailable);
  EXPECT_EQ(env.recorded_sleeps().size(), 2u);  // attempts - 1 sleeps
  EXPECT_EQ(env.counters().injected_errors, 3u);

  // The record is not in the log, and the log heals on the next try.
  env.ClearFaults();
  ASSERT_TRUE(log->Append(MakeRecord(1)).ok());
  storage::ReplayOptions strict;
  strict.env = &env;
  auto records = storage::ReadLog("wal.evlog", strict);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
}

TEST(RetryBackoffTest, CorruptionClassErrorsAreNeverRetried) {
  FaultInjectionEnv env;
  storage::LogOptions options;
  options.env = &env;
  options.retry.max_attempts = 5;
  auto log = storage::CommitLog::Open("wal.evlog", options);
  ASSERT_TRUE(log.ok());

  FaultPlan plan;
  plan.fail_writes = 5;
  plan.error_code = StatusCode::kInternal;  // permanent class
  env.set_plan(plan);
  const Status failed = log->Append(MakeRecord(1));
  EXPECT_EQ(failed.code(), StatusCode::kInternal);
  EXPECT_TRUE(env.recorded_sleeps().empty());     // no backoff
  EXPECT_EQ(env.counters().injected_errors, 1u);  // exactly one attempt
}

TEST(RetryBackoffTest, IsTransientClassifiesTheErrorSpace) {
  EXPECT_TRUE(IsTransient(UnavailableError("disk hiccup")));
  EXPECT_FALSE(IsTransient(OkStatus()));
  EXPECT_FALSE(IsTransient(InternalError("bug")));
  EXPECT_FALSE(IsTransient(InvalidArgumentError("corrupt")));
  EXPECT_FALSE(IsTransient(FailedPreconditionError("mismatch")));
  EXPECT_FALSE(IsTransient(NotFoundError("missing")));
}

}  // namespace
}  // namespace evorec
