#include "provenance/store.h"

#include <gtest/gtest.h>

#include "provenance/trust.h"
#include "provenance/workflow.h"

namespace evorec::provenance {
namespace {

ProvRecord Make(const std::string& entity, const std::string& agent,
                SourceKind source, std::vector<RecordId> inputs = {},
                uint64_t timestamp = 0) {
  ProvRecord r;
  r.entity = entity;
  r.activity = "activity/" + entity;
  r.agent = agent;
  r.source = source;
  r.inputs = std::move(inputs);
  r.timestamp = timestamp;
  return r;
}

TEST(ProvenanceStoreTest, AppendAssignsSequentialIds) {
  ProvenanceStore store;
  auto a = store.Append(Make("e1", "ann", SourceKind::kObservation));
  auto b = store.Append(Make("e2", "bob", SourceKind::kInference, {*a}));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(*b, 1u);
  EXPECT_EQ(store.size(), 2u);
}

TEST(ProvenanceStoreTest, RejectsDanglingInputs) {
  ProvenanceStore store;
  auto bad = store.Append(Make("e", "a", SourceKind::kInference, {42}));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(store.size(), 0u);
}

TEST(ProvenanceStoreTest, WhoCreatedAndWhen) {
  ProvenanceStore store;
  (void)store.Append(Make("doc", "ann", SourceKind::kObservation, {}, 10));
  (void)store.Append(Make("doc", "bob", SourceKind::kInference, {0}, 20));
  (void)store.Append(Make("other", "ann", SourceKind::kObservation, {}, 30));

  // Who touched "doc" and when — §III.b's transparency question.
  const auto doc_records = store.ForEntity("doc");
  ASSERT_EQ(doc_records.size(), 2u);
  EXPECT_EQ(doc_records[0].agent, "ann");
  EXPECT_EQ(doc_records[0].timestamp, 10u);
  EXPECT_EQ(doc_records[1].agent, "bob");

  const auto by_ann = store.ByAgent("ann");
  EXPECT_EQ(by_ann.size(), 2u);
  EXPECT_TRUE(store.ForEntity("nothing").empty());

  const auto in_range = store.InTimeRange(15, 25);
  ASSERT_EQ(in_range.size(), 1u);
  EXPECT_EQ(in_range[0].entity, "doc");
}

TEST(ProvenanceStoreTest, DerivationChainIsTransitive) {
  ProvenanceStore store;
  auto base1 = store.Append(Make("raw1", "a", SourceKind::kObservation));
  auto base2 = store.Append(Make("raw2", "a", SourceKind::kObservation));
  auto mid =
      store.Append(Make("mid", "a", SourceKind::kInference, {*base1}));
  auto top = store.Append(
      Make("top", "a", SourceKind::kInference, {*mid, *base2}));

  auto chain = store.DerivationChain(*top);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->size(), 3u);  // mid, raw1, raw2

  auto depth_top = store.DerivationDepth(*top);
  ASSERT_TRUE(depth_top.ok());
  EXPECT_EQ(*depth_top, 2u);
  EXPECT_EQ(*store.DerivationDepth(*base1), 0u);
  EXPECT_FALSE(store.DerivationChain(99).ok());
}

TEST(TrustTest, SourceKindOrdering) {
  ProvenanceStore store;
  auto obs = store.Append(Make("o", "a", SourceKind::kObservation));
  auto inf = store.Append(Make("i", "a", SourceKind::kInference));
  auto belief = store.Append(Make("b", "a", SourceKind::kBeliefAdoption));
  const TrustModel model;
  EXPECT_GT(*TrustOf(store, *obs, model), *TrustOf(store, *inf, model));
  EXPECT_GT(*TrustOf(store, *inf, model), *TrustOf(store, *belief, model));
}

TEST(TrustTest, ChainsDecayAndWeakestLinkDominates) {
  ProvenanceStore store;
  auto strong = store.Append(Make("s", "a", SourceKind::kObservation));
  auto weak = store.Append(Make("w", "a", SourceKind::kBeliefAdoption));
  auto from_strong =
      store.Append(Make("fs", "a", SourceKind::kInference, {*strong}));
  auto from_both = store.Append(
      Make("fb", "a", SourceKind::kInference, {*strong, *weak}));

  const TrustModel model;
  // Derivation is less trusted than its source.
  EXPECT_LT(*TrustOf(store, *from_strong, model),
            *TrustOf(store, *strong, model));
  // Mixing in a weak input drags trust down to the weakest link.
  EXPECT_LT(*TrustOf(store, *from_both, model),
            *TrustOf(store, *from_strong, model));
  // Deeper chains decay further.
  auto deeper =
      store.Append(Make("d", "a", SourceKind::kInference, {*from_strong}));
  EXPECT_LT(*TrustOf(store, *deeper, model),
            *TrustOf(store, *from_strong, model));
}

TEST(TrustTest, UnknownRecordErrors) {
  ProvenanceStore store;
  EXPECT_FALSE(TrustOf(store, 3).ok());
}

TEST(WorkflowTest, StagesChainAutomatically) {
  ProvenanceStore store;
  Workflow workflow("pipeline", "evorec", store);
  auto input = workflow.RecordInput("raw_data", "loaded 10 triples");
  ASSERT_TRUE(input.ok());
  auto stage1 = workflow.RunStage("parse", "parsed_data",
                                  SourceKind::kInference, {*input},
                                  [] { return std::string("parsed"); });
  ASSERT_TRUE(stage1.ok());
  auto stage2 = workflow.RunStage("analyze", "analysis",
                                  SourceKind::kInference, {*stage1},
                                  [] { return std::string("analyzed"); });
  ASSERT_TRUE(stage2.ok());

  EXPECT_EQ(workflow.stage_records().size(), 3u);
  // Logical clock increments per stage.
  EXPECT_LT(store.records()[*stage1].timestamp,
            store.records()[*stage2].timestamp);
  // Activities carry the workflow name.
  EXPECT_EQ(store.records()[*stage2].activity, "pipeline/analyze");
  // The final artefact's chain reaches the raw input.
  auto chain = store.DerivationChain(*stage2);
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain->size(), 2u);
  EXPECT_EQ(chain->back().entity, "raw_data");
}

TEST(WorkflowTest, StageFnRunsExactlyOnce) {
  ProvenanceStore store;
  Workflow workflow("wf", "agent", store);
  int runs = 0;
  (void)workflow.RunStage("s", "e", SourceKind::kObservation, {}, [&] {
    ++runs;
    return std::string("note");
  });
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(store.records()[0].note, "note");
}

TEST(SourceKindTest, NamesAreStable) {
  EXPECT_EQ(SourceKindName(SourceKind::kObservation), "observation");
  EXPECT_EQ(SourceKindName(SourceKind::kInference), "inference");
  EXPECT_EQ(SourceKindName(SourceKind::kBeliefAdoption), "belief_adoption");
}

}  // namespace
}  // namespace evorec::provenance
