// Layering regression test: includes ONLY the umbrella header and
// instantiates one type from every layer declared in src/evorec.h.
// If a layer stops being reachable from the umbrella (or an include
// cycle sneaks in), this translation unit breaks loudly.

#include "evorec.h"

#include <gtest/gtest.h>

namespace evorec {
namespace {

TEST(EvorecHeaderTest, InstantiatesOneTypePerLayer) {
  // common
  Status status;
  EXPECT_TRUE(status.ok());
  Rng rng(42);
  (void)rng.Next();

  // rdf
  rdf::Dictionary dictionary;
  EXPECT_EQ(dictionary.size(), 0u);

  // storage
  storage::SnapshotOptions snapshot_options;
  EXPECT_FALSE(snapshot_options.sync);

  // schema
  schema::ClassHierarchy hierarchy;
  hierarchy.AddEdge(1, 0);

  // version
  version::VersionId version_id = 0;
  EXPECT_EQ(version_id, 0u);
  version::ShardedKnowledgeBase sharded;
  EXPECT_TRUE(sharded.InternallySynchronized());

  // delta
  delta::LowLevelDelta low_delta;
  EXPECT_TRUE(low_delta.added.empty());

  // graph
  graph::Graph graph;
  EXPECT_EQ(graph.node_count(), 0u);

  // measures
  measures::MeasureRegistry registry;

  // profile
  profile::HumanProfile human("curator-1");
  EXPECT_EQ(human.id(), "curator-1");

  // provenance
  provenance::ProvenanceStore provenance_store;

  // anonymity
  anonymity::QiGroup qi_group;
  (void)qi_group;

  // recommend
  recommend::CandidateOptions candidate_options;
  (void)candidate_options;

  // engine
  engine::EngineOptions engine_options;
  EXPECT_GT(engine_options.context_cache_capacity, 0u);

  // workload
  workload::ChangeMix change_mix;
  EXPECT_GT(change_mix.add_class, 0.0);
}

}  // namespace
}  // namespace evorec
