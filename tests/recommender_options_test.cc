// Option-interplay coverage for the Recommender facade: package sizes,
// lambda extremes, extended registry, and group provenance.

#include <gtest/gtest.h>

#include "evorec.h"

namespace evorec::recommend {
namespace {

struct Fixture {
  workload::Scenario scenario;
  measures::MeasureRegistry registry;
  measures::EvolutionContext ctx;

  static workload::ScenarioScale Scale() {
    workload::ScenarioScale scale;
    scale.classes = 35;
    scale.properties = 12;
    scale.instances = 300;
    scale.edges = 500;
    scale.versions = 2;
    scale.operations = 120;
    return scale;
  }

  Fixture()
      : scenario(workload::MakeDbpediaLike(61, Scale())),
        registry(measures::ExtendedRegistry()),
        ctx(Build()) {}

  measures::EvolutionContext Build() {
    auto result = measures::EvolutionContext::FromVersions(
        *scenario.vkb, scenario.vkb->head() - 1, scenario.vkb->head());
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }
};

TEST(RecommenderOptionsTest, PackageSizeLargerThanPoolClamps) {
  Fixture f;
  RecommenderOptions options;
  options.package_size = 10000;
  Recommender recommender(f.registry, options);
  auto list = recommender.RecommendForUser(f.ctx, f.scenario.end_user);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->items.size(), list->candidate_pool_size);
}

TEST(RecommenderOptionsTest, PackageSizeZeroGivesEmptyPackage) {
  Fixture f;
  RecommenderOptions options;
  options.package_size = 0;
  Recommender recommender(f.registry, options);
  auto list = recommender.RecommendForUser(f.ctx, f.scenario.end_user);
  ASSERT_TRUE(list.ok());
  EXPECT_TRUE(list->items.empty());
}

TEST(RecommenderOptionsTest, LambdaExtremesBothDeliver) {
  Fixture f;
  for (double lambda : {0.0, 1.0}) {
    RecommenderOptions options;
    options.mmr_lambda = lambda;
    options.record_seen = false;
    Recommender recommender(f.registry, options);
    auto list = recommender.RecommendForUser(f.ctx, f.scenario.end_user);
    ASSERT_TRUE(list.ok()) << "lambda " << lambda;
    EXPECT_FALSE(list->items.empty());
  }
}

TEST(RecommenderOptionsTest, ExtendedRegistryContributesPropertyMeasures) {
  Fixture f;
  RecommenderOptions options;
  options.package_size = 50;  // take (almost) everything
  options.record_seen = false;
  Recommender recommender(f.registry, options);
  auto list = recommender.RecommendForUser(f.ctx, f.scenario.end_user);
  ASSERT_TRUE(list.ok());
  bool property_scoped = false;
  for (const auto& item : list->items) {
    if (item.candidate.measure.scope == measures::MeasureScope::kProperty) {
      property_scoped = true;
    }
  }
  EXPECT_TRUE(property_scoped)
      << "extended registry should surface property-scoped candidates";
}

TEST(RecommenderOptionsTest, GroupRunsRecordProvenanceTrail) {
  Fixture f;
  provenance::ProvenanceStore store;
  Recommender recommender(f.registry, {});
  recommender.AttachProvenance(&store);
  auto list = recommender.RecommendForGroup(f.ctx, f.scenario.curators);
  ASSERT_TRUE(list.ok());
  // Group pipeline stages: context, candidates, gate, selection.
  EXPECT_EQ(list->provenance_trail.size(), 4u);
  for (provenance::RecordId id : list->provenance_trail) {
    auto record = store.Get(id);
    ASSERT_TRUE(record.ok());
    EXPECT_EQ(record->agent, "evorec");
  }
}

TEST(RecommenderOptionsTest, GroupStrategySwitchesChangeDiagnostics) {
  Fixture f;
  RecommenderOptions fair_options;
  fair_options.group.fairness_aware = true;
  fair_options.group.diversify = false;
  fair_options.record_seen = false;
  RecommenderOptions misery_options = fair_options;
  misery_options.group.fairness_aware = false;
  misery_options.group.aggregation = GroupAggregation::kMostPleasure;

  Recommender fair(f.registry, fair_options);
  Recommender pleasure(f.registry, misery_options);
  auto fair_list = fair.RecommendForGroup(f.ctx, f.scenario.curators);
  auto pleasure_list =
      pleasure.RecommendForGroup(f.ctx, f.scenario.curators);
  ASSERT_TRUE(fair_list.ok());
  ASSERT_TRUE(pleasure_list.ok());
  // Maximin package never has a lower minimum than most-pleasure.
  EXPECT_GE(fair_list->fairness.min_satisfaction + 1e-9,
            pleasure_list->fairness.min_satisfaction);
}

TEST(RecommenderOptionsTest, DiversityKindIsHonoured) {
  Fixture f;
  for (auto kind : {DiversityKind::kContent, DiversityKind::kNovelty,
                    DiversityKind::kSemantic}) {
    RecommenderOptions options;
    options.diversity = kind;
    options.record_seen = false;
    Recommender recommender(f.registry, options);
    auto list = recommender.RecommendForUser(f.ctx, f.scenario.end_user);
    ASSERT_TRUE(list.ok());
    EXPECT_GE(list->set_diversity, 0.0);
    EXPECT_LE(list->set_diversity, 1.0);
  }
}

TEST(RecommenderOptionsTest, TimelineWorksOnScenarioHistories) {
  // Timeline over a scenario: the planted hot classes of the last
  // transition show up among the trending/bursty terms.
  Fixture f;
  measures::ClassChangeCountMeasure churn;
  auto timeline =
      measures::EvolutionTimeline::Compute(*f.scenario.vkb, churn);
  ASSERT_TRUE(timeline.ok());
  EXPECT_EQ(timeline->transition_count(),
            f.scenario.vkb->version_count() - 1);
  const auto bursty = timeline->TopBursty(10);
  EXPECT_FALSE(bursty.empty());
  for (const auto& t : bursty) {
    EXPECT_GT(t.mean, 0.0);
    EXPECT_GE(t.burstiness, 1.0);
  }
}

}  // namespace
}  // namespace evorec::recommend
