#include "rdf/ntriples.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "rdf/knowledge_base.h"

namespace evorec::rdf {
namespace {

TEST(NTriplesTest, ParsesBasicStatements) {
  Dictionary dict;
  TripleStore store;
  const std::string text =
      "<http://x/A> <http://x/p> <http://x/B> .\n"
      "# a comment line\n"
      "\n"
      "<http://x/A> <http://x/name> \"Alice\" .\n"
      "_:b0 <http://x/p> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> "
      ".\n"
      "<http://x/B> <http://x/label> \"hallo\"@de .\n";
  ASSERT_TRUE(ParseNTriples(text, dict, store).ok());
  EXPECT_EQ(store.size(), 4u);

  const TermId a = dict.Find(Term::Iri("http://x/A"));
  const TermId p = dict.Find(Term::Iri("http://x/p"));
  const TermId b = dict.Find(Term::Iri("http://x/B"));
  ASSERT_NE(a, kAnyTerm);
  ASSERT_NE(p, kAnyTerm);
  ASSERT_NE(b, kAnyTerm);
  EXPECT_TRUE(store.Contains({a, p, b}));

  const TermId lang = dict.Find(Term::Literal("hallo", "", "de"));
  EXPECT_NE(lang, kAnyTerm);
}

TEST(NTriplesTest, RejectsMalformedLines) {
  Dictionary dict;
  TripleStore store;
  // Missing terminating dot.
  auto s1 = ParseNTriples("<a> <b> <c>", dict, store);
  EXPECT_FALSE(s1.ok());
  EXPECT_NE(s1.message().find("line 1"), std::string::npos);
  // Literal subject.
  EXPECT_FALSE(ParseNTriples("\"lit\" <b> <c> .", dict, store).ok());
  // Blank predicate.
  EXPECT_FALSE(ParseNTriples("<a> _:b <c> .", dict, store).ok());
  // Unterminated IRI.
  EXPECT_FALSE(ParseNTriples("<a <b> <c> .", dict, store).ok());
  // Unterminated literal.
  EXPECT_FALSE(ParseNTriples("<a> <b> \"open .", dict, store).ok());
}

TEST(NTriplesTest, ReportsCorrectLineNumber) {
  Dictionary dict;
  TripleStore store;
  auto status =
      ParseNTriples("<a> <b> <c> .\n<a> <b> garbage .\n", dict, store);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 2"), std::string::npos);
}

TEST(NTriplesTest, RoundTripPreservesStore) {
  KnowledgeBase kb;
  kb.AddIriTriple("http://x/A", "http://x/p", "http://x/B");
  kb.AddLiteralTriple("http://x/A", "http://x/name", "Ann \"quoted\"\n");
  kb.DeclareClass("http://x/C");
  kb.DeclareProperty("http://x/p", "http://x/A", "http://x/B");

  const std::string serialized = WriteNTriples(kb.store(), kb.dictionary());

  Dictionary dict2;
  TripleStore store2;
  ASSERT_TRUE(ParseNTriples(serialized, dict2, store2).ok());
  EXPECT_EQ(store2.size(), kb.store().size());

  // Second round trip must be byte-identical (canonical form).
  const std::string serialized2 = WriteNTriples(store2, dict2);
  // Term ids differ between dictionaries, so compare as sorted line
  // sets.
  auto lines = [](const std::string& text) {
    std::vector<std::string> out;
    size_t start = 0;
    while (start < text.size()) {
      size_t nl = text.find('\n', start);
      if (nl == std::string::npos) nl = text.size();
      out.push_back(text.substr(start, nl - start));
      start = nl + 1;
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(lines(serialized), lines(serialized2));
}

TEST(NTriplesTest, EmptyInputIsOk) {
  Dictionary dict;
  TripleStore store;
  EXPECT_TRUE(ParseNTriples("", dict, store).ok());
  EXPECT_TRUE(ParseNTriples("\n\n# only comments\n", dict, store).ok());
  EXPECT_EQ(store.size(), 0u);
}

TEST(KnowledgeBaseTest, ConvenienceBuilders) {
  KnowledgeBase kb;
  const TermId cls = kb.DeclareClass("http://x/C");
  const TermId prop =
      kb.DeclareProperty("http://x/p", "http://x/C", "http://x/D");
  const Vocabulary& voc = kb.vocabulary();
  EXPECT_TRUE(kb.store().Contains({cls, voc.rdf_type, voc.rdfs_class}));
  EXPECT_TRUE(kb.store().Contains({prop, voc.rdf_type, voc.rdf_property}));
  EXPECT_EQ(kb.store().Match({prop, voc.rdfs_domain, kAnyTerm}).size(), 1u);
  EXPECT_EQ(kb.store().Match({prop, voc.rdfs_range, kAnyTerm}).size(), 1u);
}

TEST(KnowledgeBaseTest, CopySharesDictionaryButNotTriples) {
  KnowledgeBase a;
  a.AddIriTriple("http://x/A", "http://x/p", "http://x/B");
  KnowledgeBase b = a;
  b.AddIriTriple("http://x/C", "http://x/p", "http://x/D");
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(a.shared_dictionary(), b.shared_dictionary());
}

}  // namespace
}  // namespace evorec::rdf
