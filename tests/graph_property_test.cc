// Property sweeps for the graph algorithms on random graphs: exact
// betweenness invariants, sampling consistency, and component/metric
// sanity against brute-force references.

#include <gtest/gtest.h>

#include <cmath>
#include <deque>

#include "common/random.h"
#include "graph/betweenness.h"
#include "graph/bridging.h"
#include "graph/graph.h"
#include "graph/graph_metrics.h"

namespace evorec::graph {
namespace {

Graph RandomGraph(size_t nodes, size_t edges, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<NodeId, NodeId>> edge_list;
  for (size_t i = 0; i < edges; ++i) {
    edge_list.emplace_back(
        static_cast<NodeId>(rng.UniformInt(0, static_cast<int64_t>(nodes) - 1)),
        static_cast<NodeId>(
            rng.UniformInt(0, static_cast<int64_t>(nodes) - 1)));
  }
  return Graph::FromEdges(nodes, std::move(edge_list));
}

class GraphPropertyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, GraphPropertyTest,
                         ::testing::Values(3, 41, 97, 271));

TEST_P(GraphPropertyTest, BetweennessIsNonNegativeAndFinite) {
  const Graph g = RandomGraph(40, 80, GetParam());
  for (double b : BetweennessExact(g)) {
    EXPECT_GE(b, 0.0);
    EXPECT_TRUE(std::isfinite(b));
  }
}

TEST_P(GraphPropertyTest, BetweennessTotalEqualsInternalPairDistances) {
  // Σ_v B(v) = Σ_{s<t} (d(s,t) − 1) over connected pairs: every
  // shortest path of length d contributes d−1 interior nodes.
  const Graph g = RandomGraph(25, 40, GetParam());
  const auto betweenness = BetweennessExact(g);
  double betweenness_total = 0.0;
  for (double b : betweenness) betweenness_total += b;

  // Reference: BFS from every source. For pairs with multiple shortest
  // paths the identity still holds in expectation over path *shares*
  // (Brandes splits fractionally), so we compare against Σ (d−1).
  double distance_total = 0.0;
  const size_t n = g.node_count();
  for (NodeId s = 0; s < n; ++s) {
    std::vector<int64_t> dist(n, -1);
    std::deque<NodeId> queue{s};
    dist[s] = 0;
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      for (NodeId w : g.Neighbors(v)) {
        if (dist[w] < 0) {
          dist[w] = dist[v] + 1;
          queue.push_back(w);
        }
      }
    }
    for (NodeId t = s + 1; t < n; ++t) {
      if (dist[t] > 0) {
        distance_total += static_cast<double>(dist[t] - 1);
      }
    }
  }
  EXPECT_NEAR(betweenness_total, distance_total, 1e-6);
}

TEST_P(GraphPropertyTest, SampledBetweennessIsUnbiasedEnough) {
  // Averaging many sampled runs approaches the exact values.
  const Graph g = RandomGraph(30, 60, GetParam());
  const auto exact = BetweennessExact(g);
  std::vector<double> accumulated(g.node_count(), 0.0);
  const size_t runs = 40;
  for (size_t r = 0; r < runs; ++r) {
    Rng rng(GetParam() * 1000 + r);
    const auto sampled = BetweennessSampled(g, 10, rng);
    for (size_t i = 0; i < sampled.size(); ++i) {
      accumulated[i] += sampled[i];
    }
  }
  double exact_total = 0.0;
  double sampled_total = 0.0;
  for (size_t i = 0; i < exact.size(); ++i) {
    exact_total += exact[i];
    sampled_total += accumulated[i] / static_cast<double>(runs);
  }
  if (exact_total > 0.0) {
    EXPECT_NEAR(sampled_total / exact_total, 1.0, 0.15);
  }
}

TEST_P(GraphPropertyTest, ComponentsPartitionTheGraph) {
  const Graph g = RandomGraph(50, 45, GetParam());  // likely disconnected
  const auto labels = ConnectedComponents(g);
  ASSERT_EQ(labels.size(), g.node_count());
  // Every edge connects same-labelled nodes.
  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (NodeId w : g.Neighbors(v)) {
      EXPECT_EQ(labels[v], labels[w]);
    }
  }
  // Labels are dense 0..count-1.
  const size_t count = ComponentCount(g);
  for (NodeId label : labels) {
    EXPECT_LT(label, count);
  }
}

TEST_P(GraphPropertyTest, BridgingCoefficientFiniteAndNonNegative) {
  const Graph g = RandomGraph(40, 70, GetParam());
  for (double c : BridgingCoefficient(g)) {
    EXPECT_GE(c, 0.0);
    EXPECT_TRUE(std::isfinite(c));
  }
}

TEST_P(GraphPropertyTest, ClusteringCoefficientBounded) {
  const Graph g = RandomGraph(35, 90, GetParam());
  for (double c : LocalClusteringCoefficient(g)) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

}  // namespace
}  // namespace evorec::graph
