#include "recommend/diversity.h"

#include <gtest/gtest.h>

#include <set>

namespace evorec::recommend {
namespace {

MeasureCandidate Make(const std::string& id,
                      measures::MeasureCategory category,
                      std::vector<rdf::TermId> top_terms) {
  MeasureCandidate c;
  c.id = id;
  c.measure.name = id;
  c.measure.category = category;
  c.measure.scope = measures::MeasureScope::kClass;
  c.top_terms = std::move(top_terms);
  for (size_t i = 0; i < c.top_terms.size(); ++i) {
    c.report.Add(c.top_terms[i], 1.0);
  }
  return c;
}

TEST(DistanceTest, ContentDistanceIsOneMinusJaccard) {
  const auto a = Make("a", measures::MeasureCategory::kCount, {1, 2, 3});
  const auto b = Make("b", measures::MeasureCategory::kCount, {2, 3, 4});
  const auto c = Make("c", measures::MeasureCategory::kCount, {9, 10});
  EXPECT_DOUBLE_EQ(CandidateDistance(a, b, DiversityKind::kContent), 0.5);
  EXPECT_DOUBLE_EQ(CandidateDistance(a, c, DiversityKind::kContent), 1.0);
  EXPECT_DOUBLE_EQ(CandidateDistance(a, a, DiversityKind::kContent), 0.0);
}

TEST(DistanceTest, SemanticDistanceWeighsCategory) {
  const auto count = Make("a", measures::MeasureCategory::kCount, {1, 2});
  const auto structural =
      Make("b", measures::MeasureCategory::kStructural, {1, 2});
  const auto semantic =
      Make("c", measures::MeasureCategory::kSemantic, {1, 2});
  // Same terms, different category → distance dominated by category.
  const double cross =
      CandidateDistance(count, structural, DiversityKind::kSemantic);
  const double same =
      CandidateDistance(structural, semantic, DiversityKind::kSemantic);
  EXPECT_GT(cross, 0.4);
  EXPECT_GT(same, 0.4);
  EXPECT_DOUBLE_EQ(
      CandidateDistance(count, count, DiversityKind::kSemantic), 0.0);
}

TEST(DistanceTest, AllDistancesAreBoundedAndSymmetric) {
  const auto a = Make("a", measures::MeasureCategory::kCount, {1, 2, 3});
  const auto b = Make("b", measures::MeasureCategory::kSemantic, {3, 4});
  for (DiversityKind kind : {DiversityKind::kContent, DiversityKind::kNovelty,
                             DiversityKind::kSemantic}) {
    const double d1 = CandidateDistance(a, b, kind);
    const double d2 = CandidateDistance(b, a, kind);
    EXPECT_DOUBLE_EQ(d1, d2);
    EXPECT_GE(d1, 0.0);
    EXPECT_LE(d1, 1.0);
  }
}

TEST(NoveltyTest, ScoresAgainstProfileHistory) {
  profile::HumanProfile prof("p");
  prof.RecordSeen({1, 2});
  const auto candidate =
      Make("a", measures::MeasureCategory::kCount, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(NoveltyScore(prof, candidate), 0.5);
}

std::vector<MeasureCandidate> Pool() {
  return {
      Make("c0", measures::MeasureCategory::kCount, {1, 2, 3}),
      Make("c1", measures::MeasureCategory::kCount, {1, 2, 4}),  // ~c0
      Make("c2", measures::MeasureCategory::kStructural, {7, 8, 9}),
      Make("c3", measures::MeasureCategory::kSemantic, {10, 11}),
      Make("c4", measures::MeasureCategory::kCount, {1, 3, 2}),  // ~c0
  };
}

TEST(SelectMmrTest, LambdaOneIsPureRelevance) {
  const auto pool = Pool();
  const std::vector<double> relevance = {0.9, 0.8, 0.1, 0.2, 0.7};
  const auto selected =
      SelectMmr(pool, relevance, 3, 1.0, DiversityKind::kContent);
  ASSERT_EQ(selected.size(), 3u);
  // Top-3 by relevance: 0, 1, 4.
  EXPECT_EQ(std::set<size_t>(selected.begin(), selected.end()),
            (std::set<size_t>{0, 1, 4}));
}

TEST(SelectMmrTest, LambdaZeroDiversifies) {
  const auto pool = Pool();
  const std::vector<double> relevance = {0.9, 0.8, 0.1, 0.2, 0.7};
  const auto selected =
      SelectMmr(pool, relevance, 3, 0.0, DiversityKind::kContent);
  ASSERT_EQ(selected.size(), 3u);
  // First pick is the most relevant (c0); after that, near-duplicates
  // c1/c4 must not both follow — diverse c2/c3 take the other slots.
  EXPECT_EQ(selected[0], 0u);
  const std::set<size_t> rest(selected.begin() + 1, selected.end());
  EXPECT_TRUE(rest.count(2));
  EXPECT_TRUE(rest.count(3));
}

TEST(SelectMmrTest, DiversityIncreasesAsLambdaDrops) {
  const auto pool = Pool();
  const std::vector<double> relevance = {0.9, 0.85, 0.1, 0.15, 0.8};
  const auto high_lambda =
      SelectMmr(pool, relevance, 3, 1.0, DiversityKind::kContent);
  const auto low_lambda =
      SelectMmr(pool, relevance, 3, 0.0, DiversityKind::kContent);
  EXPECT_GE(SetDiversity(pool, low_lambda, DiversityKind::kContent),
            SetDiversity(pool, high_lambda, DiversityKind::kContent));
}

TEST(SelectMmrTest, HandlesEdgeCases) {
  const auto pool = Pool();
  const std::vector<double> relevance(pool.size(), 0.5);
  EXPECT_TRUE(SelectMmr(pool, relevance, 0, 0.5, DiversityKind::kContent)
                  .empty());
  // k > pool size clamps.
  EXPECT_EQ(
      SelectMmr(pool, relevance, 99, 0.5, DiversityKind::kContent).size(),
      pool.size());
  EXPECT_TRUE(SelectMmr({}, {}, 3, 0.5, DiversityKind::kContent).empty());
}

TEST(SelectMaxMinTest, SpreadsSelection) {
  const auto pool = Pool();
  const std::vector<double> relevance = {0.9, 0.8, 0.5, 0.5, 0.7};
  const auto selected =
      SelectMaxMin(pool, relevance, 3, DiversityKind::kContent);
  ASSERT_EQ(selected.size(), 3u);
  EXPECT_EQ(selected[0], 0u);  // relevance seeds the first pick
  // Near-duplicates of c0 (c1, c4) are avoided.
  for (size_t i : selected) {
    if (i == 0) continue;
    EXPECT_TRUE(i == 2 || i == 3) << "picked near-duplicate " << i;
  }
}

TEST(ImproveBySwapsTest, NeverWorsensObjective) {
  const auto pool = Pool();
  const std::vector<double> relevance = {0.9, 0.8, 0.1, 0.2, 0.7};
  // Deliberately bad start: the three near-duplicates.
  std::vector<size_t> start = {0, 1, 4};
  const double before =
      MmrObjective(pool, relevance, start, 0.3, DiversityKind::kContent);
  const auto improved = ImproveBySwaps(pool, relevance, start, 0.3,
                                       DiversityKind::kContent);
  const double after =
      MmrObjective(pool, relevance, improved, 0.3, DiversityKind::kContent);
  EXPECT_GE(after, before);
  EXPECT_EQ(improved.size(), start.size());
  // With λ=0.3 the duplicates should be swapped out.
  EXPECT_GT(SetDiversity(pool, improved, DiversityKind::kContent),
            SetDiversity(pool, start, DiversityKind::kContent));
}

TEST(SetDiversityTest, SingletonsAreFullyDiverse) {
  const auto pool = Pool();
  EXPECT_DOUBLE_EQ(SetDiversity(pool, {0}, DiversityKind::kContent), 1.0);
  EXPECT_DOUBLE_EQ(SetDiversity(pool, {}, DiversityKind::kContent), 1.0);
}

TEST(CategoryCoverageTest, CountsDistinctCategories) {
  const auto pool = Pool();
  EXPECT_NEAR(CategoryCoverage(pool, {0, 1}), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(CategoryCoverage(pool, {0, 2}), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(CategoryCoverage(pool, {0, 2, 3}), 1.0, 1e-9);
}

}  // namespace
}  // namespace evorec::recommend
