#include "measures/timeline.h"

#include <gtest/gtest.h>

#include "measures/change_count.h"
#include "version/versioned_kb.h"

namespace evorec::measures {
namespace {

using rdf::TermId;
using rdf::Triple;
using version::ChangeSet;
using version::VersionedKnowledgeBase;

// History with a class whose churn *grows* every transition (Rising)
// and one with a single spike in the middle (Spiky).
struct TimelineFixture {
  VersionedKnowledgeBase vkb;
  TermId rising, spiky;

  TimelineFixture() {
    auto& dict = vkb.dictionary();
    const auto& voc = vkb.vocabulary();
    rising = dict.InternIri("http://x/Rising");
    spiky = dict.InternIri("http://x/Spiky");
    ChangeSet base;
    base.additions.push_back({rising, voc.rdf_type, voc.rdfs_class});
    base.additions.push_back({spiky, voc.rdf_type, voc.rdfs_class});
    (void)vkb.Commit(base, "t", "declare classes");

    // Transitions 1..4: rising gets v instances; spiky gets 10 only in
    // transition 2 (0-indexed series position 2).
    for (uint32_t v = 1; v <= 4; ++v) {
      ChangeSet cs;
      for (uint32_t i = 0; i < v * 2; ++i) {
        cs.additions.push_back(
            {dict.InternIri("http://x/r" + std::to_string(v) + "_" +
                            std::to_string(i)),
             voc.rdf_type, rising});
      }
      if (v == 3) {
        for (uint32_t i = 0; i < 10; ++i) {
          cs.additions.push_back(
              {dict.InternIri("http://x/s" + std::to_string(i)),
               voc.rdf_type, spiky});
        }
      }
      (void)vkb.Commit(cs, "t", "churn " + std::to_string(v));
    }
  }
};

TEST(TimelineTest, CoversAllTransitions) {
  TimelineFixture f;
  ClassChangeCountMeasure measure;
  auto timeline = EvolutionTimeline::Compute(f.vkb, measure);
  ASSERT_TRUE(timeline.ok());
  // 6 versions → 5 transitions (incl. the base declaration commit).
  EXPECT_EQ(timeline->transition_count(), 5u);
}

TEST(TimelineTest, SeriesTracksPerTransitionScores) {
  TimelineFixture f;
  ClassChangeCountMeasure measure;
  auto timeline = EvolutionTimeline::Compute(f.vkb, measure,
                                             /*first=*/1);
  ASSERT_TRUE(timeline.ok());
  ASSERT_EQ(timeline->transition_count(), 4u);
  const auto rising_series = timeline->SeriesOf(f.rising);
  ASSERT_EQ(rising_series.size(), 4u);
  // Monotonically growing churn.
  for (size_t i = 1; i < rising_series.size(); ++i) {
    EXPECT_GT(rising_series[i], rising_series[i - 1]);
  }
  const auto spiky_series = timeline->SeriesOf(f.spiky);
  EXPECT_DOUBLE_EQ(spiky_series[0], 0.0);
  EXPECT_GT(spiky_series[2], 0.0);
  EXPECT_DOUBLE_EQ(spiky_series[3], 0.0);
}

TEST(TimelineTest, TrendStatsIdentifyShapes) {
  TimelineFixture f;
  ClassChangeCountMeasure measure;
  auto timeline = EvolutionTimeline::Compute(f.vkb, measure, /*first=*/1);
  ASSERT_TRUE(timeline.ok());
  const auto rising = timeline->TrendOf(f.rising);
  const auto spiky = timeline->TrendOf(f.spiky);
  EXPECT_GT(rising.slope, 0.0);
  EXPECT_GT(rising.mean, 0.0);
  EXPECT_GT(spiky.burstiness, rising.burstiness);
  EXPECT_EQ(spiky.peak_transition, 2u);
  // Unknown terms are flat zeros.
  const auto unknown = timeline->TrendOf(999999);
  EXPECT_DOUBLE_EQ(unknown.mean, 0.0);
  EXPECT_DOUBLE_EQ(unknown.slope, 0.0);
}

TEST(TimelineTest, TopTrendingAndBursty) {
  TimelineFixture f;
  ClassChangeCountMeasure measure;
  auto timeline = EvolutionTimeline::Compute(f.vkb, measure, /*first=*/1);
  ASSERT_TRUE(timeline.ok());
  const auto trending = timeline->TopTrending(1);
  ASSERT_EQ(trending.size(), 1u);
  EXPECT_EQ(trending[0].term, f.rising);

  const auto bursty = timeline->TopBursty(1);
  ASSERT_EQ(bursty.size(), 1u);
  EXPECT_EQ(bursty[0].term, f.spiky);
}

TEST(TimelineTest, ActiveTermsExcludeUntouched) {
  TimelineFixture f;
  ClassChangeCountMeasure measure;
  auto timeline = EvolutionTimeline::Compute(f.vkb, measure, /*first=*/1);
  ASSERT_TRUE(timeline.ok());
  const auto active = timeline->ActiveTerms();
  EXPECT_NE(std::find(active.begin(), active.end(), f.rising),
            active.end());
  EXPECT_NE(std::find(active.begin(), active.end(), f.spiky), active.end());
}

TEST(TimelineTest, RangeValidation) {
  TimelineFixture f;
  ClassChangeCountMeasure measure;
  // Empty range.
  EXPECT_FALSE(EvolutionTimeline::Compute(f.vkb, measure, 3, 3).ok());
  // Single-version store.
  VersionedKnowledgeBase tiny;
  EXPECT_FALSE(EvolutionTimeline::Compute(tiny, measure).ok());
  // Range clamped to head.
  auto clamped = EvolutionTimeline::Compute(f.vkb, measure, 0, 9999);
  ASSERT_TRUE(clamped.ok());
  EXPECT_EQ(clamped->transition_count(), 5u);
}

}  // namespace
}  // namespace evorec::measures
