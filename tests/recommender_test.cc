#include "recommend/recommender.h"

#include <gtest/gtest.h>

#include "workload/scenarios.h"

namespace evorec::recommend {
namespace {

using measures::EvolutionContext;

// Small scenario shared by the recommender tests.
struct Fixture {
  workload::Scenario scenario;
  measures::MeasureRegistry registry;
  EvolutionContext ctx;

  static workload::ScenarioScale SmallScale() {
    workload::ScenarioScale scale;
    scale.classes = 40;
    scale.properties = 15;
    scale.instances = 400;
    scale.edges = 700;
    scale.versions = 2;
    scale.operations = 150;
    return scale;
  }

  Fixture()
      : scenario(workload::MakeDbpediaLike(17, SmallScale())),
        registry(measures::DefaultRegistry()),
        ctx(BuildContext()) {}

  EvolutionContext BuildContext() {
    auto result = EvolutionContext::FromVersions(
        *scenario.vkb, scenario.vkb->head() - 1, scenario.vkb->head());
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }
};

TEST(RecommenderTest, UserRecommendationDeliversPackage) {
  Fixture f;
  RecommenderOptions options;
  options.package_size = 4;
  Recommender recommender(f.registry, options);
  auto list = recommender.RecommendForUser(f.ctx, f.scenario.end_user);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->items.size(), 4u);
  EXPECT_GT(list->candidate_pool_size, 0u);
  for (const RecommendationItem& item : list->items) {
    EXPECT_FALSE(item.candidate.id.empty());
    EXPECT_GE(item.relatedness, 0.0);
    EXPECT_LE(item.relatedness, 1.0);
    EXPECT_FALSE(item.explanation.measure_description.empty());
  }
  // Package diagnostics are populated.
  EXPECT_GE(list->set_diversity, 0.0);
  EXPECT_GT(list->category_coverage, 0.0);
}

TEST(RecommenderTest, RecordsSeenAndNoveltyDrops) {
  Fixture f;
  RecommenderOptions options;
  options.package_size = 3;
  options.novelty_weight = 0.0;
  Recommender recommender(f.registry, options);
  profile::HumanProfile& user = f.scenario.end_user;
  const size_t seen_before = user.seen_count();
  auto first = recommender.RecommendForUser(f.ctx, user);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(user.seen_count(), seen_before);

  // A second run over the same context yields lower novelty for the
  // same items.
  auto second = recommender.RecommendForUser(f.ctx, user);
  ASSERT_TRUE(second.ok());
  double max_novelty = 0.0;
  for (const auto& item : second->items) {
    max_novelty = std::max(max_novelty, item.novelty);
  }
  // All top terms of repeated candidates were seen in run one.
  bool any_repeat = false;
  for (const auto& item : second->items) {
    for (const auto& prev : first->items) {
      if (item.candidate.id == prev.candidate.id) {
        any_repeat = true;
        EXPECT_DOUBLE_EQ(item.novelty, 0.0);
      }
    }
  }
  (void)any_repeat;  // repeats are likely but not guaranteed
}

TEST(RecommenderTest, RecordSeenCanBeDisabled) {
  Fixture f;
  RecommenderOptions options;
  options.record_seen = false;
  Recommender recommender(f.registry, options);
  const size_t seen_before = f.scenario.end_user.seen_count();
  auto list = recommender.RecommendForUser(f.ctx, f.scenario.end_user);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(f.scenario.end_user.seen_count(), seen_before);
}

TEST(RecommenderTest, ProvenanceTrailCoversPipeline) {
  Fixture f;
  provenance::ProvenanceStore store;
  Recommender recommender(f.registry, {});
  recommender.AttachProvenance(&store);
  auto list = recommender.RecommendForUser(f.ctx, f.scenario.end_user);
  ASSERT_TRUE(list.ok());
  // Stages: context, candidates, gate, scoring, selection.
  EXPECT_EQ(list->provenance_trail.size(), 5u);
  EXPECT_EQ(store.size(), 5u);
  // Every item explanation points at a real record whose chain reaches
  // the first stage.
  for (const auto& item : list->items) {
    ASSERT_TRUE(item.explanation.has_provenance);
    auto chain = store.DerivationChain(item.explanation.provenance_record);
    ASSERT_TRUE(chain.ok());
    EXPECT_EQ(chain->size(), 4u);
  }
  // Without a store, no trail.
  Recommender plain(f.registry, {});
  auto quiet = plain.RecommendForUser(f.ctx, f.scenario.end_user);
  ASSERT_TRUE(quiet.ok());
  EXPECT_TRUE(quiet->provenance_trail.empty());
}

TEST(RecommenderTest, GroupRecommendationIsFairByDefault) {
  Fixture f;
  RecommenderOptions options;
  options.package_size = 5;
  Recommender recommender(f.registry, options);
  auto list = recommender.RecommendForGroup(f.ctx, f.scenario.curators);
  ASSERT_TRUE(list.ok());
  EXPECT_FALSE(list->items.empty());
  EXPECT_EQ(list->fairness.satisfaction.size(),
            f.scenario.curators.size());
  EXPECT_GE(list->fairness.min_satisfaction, 0.0);
  EXPECT_GE(list->fairness.mean_satisfaction,
            list->fairness.min_satisfaction);
}

TEST(RecommenderTest, EmptyGroupIsRejected) {
  Fixture f;
  Recommender recommender(f.registry, {});
  profile::Group empty("empty");
  auto list = recommender.RecommendForGroup(f.ctx, empty);
  EXPECT_FALSE(list.ok());
  EXPECT_EQ(list.status().code(), StatusCode::kInvalidArgument);
}

TEST(RecommenderTest, AccessPolicyRedactsSensitiveRegions) {
  // Clinical scenario: hot (most interesting) classes are sensitive.
  workload::Scenario scenario =
      workload::MakeClinicalKb(23, Fixture::SmallScale());
  auto ctx = EvolutionContext::FromVersions(
      *scenario.vkb, scenario.vkb->head() - 1, scenario.vkb->head());
  ASSERT_TRUE(ctx.ok());
  measures::MeasureRegistry registry = measures::DefaultRegistry();

  Recommender gated(registry, {});
  gated.AttachAccessPolicy(&scenario.policy);
  auto restricted = gated.RecommendForUser(*ctx, scenario.end_user);
  ASSERT_TRUE(restricted.ok());
  // Sensitive terms never appear in delivered top-terms.
  for (const auto& item : restricted->items) {
    for (rdf::TermId term : item.candidate.top_terms) {
      EXPECT_TRUE(
          scenario.policy.CheckAccess(scenario.end_user.id(), term).ok())
          << "sensitive term " << term << " leaked";
    }
  }
  EXPECT_GT(restricted->redacted_terms + restricted->dropped_candidates, 0u);

  // The DPO sees everything: no redactions for a fully granted agent.
  profile::HumanProfile dpo("dpo");
  dpo.SetInterest(scenario.sensitive_classes.empty()
                      ? rdf::TermId{0}
                      : scenario.sensitive_classes[0],
                  1.0);
  auto full = gated.RecommendForUser(*ctx, dpo);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->redacted_terms, 0u);
}

TEST(RecommenderTest, NoveltyWeightChangesSelection) {
  Fixture f;
  // Saturate the user's history with every class so novelty
  // discriminates.
  profile::HumanProfile user = f.scenario.end_user;
  RecommenderOptions plain_options;
  plain_options.record_seen = false;
  RecommenderOptions novelty_options = plain_options;
  novelty_options.novelty_weight = 0.9;

  Recommender plain(f.registry, plain_options);
  Recommender novelty_seeking(f.registry, novelty_options);
  auto a = plain.RecommendForUser(f.ctx, user);
  auto b = novelty_seeking.RecommendForUser(f.ctx, user);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Both deliver; scores use different blends (novelty of unseen terms
  // is 1, so relevance ordering may change).
  EXPECT_EQ(a->items.size(), b->items.size());
}

}  // namespace
}  // namespace evorec::recommend
