#include "measures/property_measures.h"

#include <gtest/gtest.h>

#include <set>

#include "measures/measure_context.h"
#include "rdf/knowledge_base.h"

namespace evorec::measures {
namespace {

using rdf::KnowledgeBase;
using rdf::TermId;

// Two properties between Person and City; the transition shifts most
// traffic from worksIn to bornIn.
struct PropertyFixture {
  KnowledgeBase before;
  KnowledgeBase after;
  TermId person, city, works_in, born_in;

  PropertyFixture() {
    person = before.DeclareClass("http://x/Person");
    city = before.DeclareClass("http://x/City");
    works_in = before.DeclareProperty("http://x/worksIn", "http://x/Person",
                                      "http://x/City");
    born_in = before.DeclareProperty("http://x/bornIn", "http://x/Person",
                                     "http://x/City");
    const auto& voc = before.vocabulary();
    auto& dict = before.dictionary();
    // Instances.
    for (int i = 0; i < 6; ++i) {
      before.store().Add(
          {dict.InternIri("http://x/p" + std::to_string(i)), voc.rdf_type,
           person});
    }
    before.store().Add(
        {dict.InternIri("http://x/rome"), voc.rdf_type, city});
    // Before: 4 worksIn edges, 1 bornIn edge.
    const TermId rome = dict.InternIri("http://x/rome");
    for (int i = 0; i < 4; ++i) {
      before.store().Add(
          {dict.InternIri("http://x/p" + std::to_string(i)), works_in,
           rome});
    }
    before.store().Add({dict.InternIri("http://x/p0"), born_in, rome});

    after = before;
    // After: remove 3 worksIn edges, add 4 bornIn edges.
    for (int i = 1; i < 4; ++i) {
      after.store().Remove(
          {dict.InternIri("http://x/p" + std::to_string(i)), works_in,
           rome});
    }
    for (int i = 1; i < 5; ++i) {
      after.store().Add(
          {dict.InternIri("http://x/p" + std::to_string(i)), born_in,
           rome});
    }
  }

  EvolutionContext Context() const {
    auto ctx = EvolutionContext::Build(before, after);
    EXPECT_TRUE(ctx.ok());
    return std::move(ctx).value();
  }
};

TEST(PropertyImportanceTest, SumsWeightedRelativeCardinalities) {
  PropertyFixture f;
  const schema::SchemaView view = schema::SchemaView::Build(f.before);
  const auto importance = ComputePropertyImportance(view);
  // Both properties connect the same class pair with the same RC
  // denominator; worksIn carries more edges → higher importance.
  EXPECT_GT(importance.at(f.works_in), importance.at(f.born_in));
  EXPECT_GT(importance.at(f.born_in), 0.0);
}

TEST(PropertyCardinalityShiftTest, DetectsTrafficMigration) {
  PropertyFixture f;
  const EvolutionContext ctx = f.Context();
  PropertyCardinalityShiftMeasure measure;
  auto report = measure.Compute(ctx);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->ScoreOf(f.works_in), 0.0);
  EXPECT_GT(report->ScoreOf(f.born_in), 0.0);
  EXPECT_EQ(measure.info().scope, MeasureScope::kProperty);
  EXPECT_EQ(measure.info().category, MeasureCategory::kSemantic);
}

TEST(PropertyCardinalityShiftTest, ZeroOnIdentityTransition) {
  PropertyFixture f;
  auto ctx = EvolutionContext::Build(f.before, f.before);
  ASSERT_TRUE(ctx.ok());
  PropertyCardinalityShiftMeasure measure;
  auto report = measure.Compute(*ctx);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->TotalScore(), 0.0);
}

TEST(PropertyEndpointShiftTest, RespondsToTopologyChange) {
  // Reparent City in the hierarchy so the endpoints' betweenness
  // moves while the property's own triples stay identical.
  PropertyFixture f;
  f.before.DeclareClass("http://x/Place");
  f.before.DeclareClass("http://x/Region");
  f.before.AddIriTriple("http://x/Region",
                        "http://www.w3.org/2000/01/rdf-schema#subClassOf",
                        "http://x/Place");
  KnowledgeBase before = f.before;
  KnowledgeBase after = f.before;
  after.AddIriTriple("http://x/City",
                     "http://www.w3.org/2000/01/rdf-schema#subClassOf",
                     "http://x/Region");
  auto ctx = EvolutionContext::Build(before, after);
  ASSERT_TRUE(ctx.ok());
  PropertyEndpointShiftMeasure measure;
  auto report = measure.Compute(*ctx);
  ASSERT_TRUE(report.ok());
  // Attaching City into the Place chain changes shortest paths through
  // it; both properties end at City, so both shift.
  EXPECT_GT(report->TotalScore(), 0.0);
  EXPECT_EQ(measure.info().category, MeasureCategory::kStructural);
}

TEST(ExtendedRegistryTest, ContainsDefaultsPlusExtensions) {
  const MeasureRegistry registry = ExtendedRegistry();
  EXPECT_EQ(registry.size(), 11u);
  std::set<std::string> names;
  for (const MeasureInfo& info : registry.List()) {
    names.insert(info.name);
  }
  EXPECT_TRUE(names.count("property_cardinality_shift"));
  EXPECT_TRUE(names.count("property_endpoint_shift"));
  EXPECT_TRUE(names.count("class_change_count_direct"));
  // All defaults still present.
  EXPECT_TRUE(names.count("relevance_shift"));
  EXPECT_TRUE(names.count("class_change_count"));
}

TEST(ExtendedRegistryTest, AllExtendedMeasuresCompute) {
  PropertyFixture f;
  const EvolutionContext ctx = f.Context();
  const MeasureRegistry registry = ExtendedRegistry();
  for (const auto& measure : registry.CreateAll()) {
    auto report = measure->Compute(ctx);
    ASSERT_TRUE(report.ok()) << measure->info().name;
    for (const auto& s : report->scores()) {
      EXPECT_GE(s.score, 0.0) << measure->info().name;
    }
  }
}

}  // namespace
}  // namespace evorec::measures
