#include "measures/measure.h"

#include <gtest/gtest.h>

#include "measures/centrality.h"
#include "measures/change_count.h"
#include "measures/measure_context.h"
#include "measures/neighborhood_change.h"
#include "measures/relevance.h"
#include "measures/report.h"
#include "measures/structural_shift.h"

namespace evorec::measures {
namespace {

using rdf::KnowledgeBase;
using rdf::TermId;

// Fixture KB: Person ⊒ Student; City; worksIn: Person→City;
// knows: Person→Person. Transition: instances churn on Person, one
// class moves in the hierarchy.
struct MeasureFixture {
  KnowledgeBase before;
  KnowledgeBase after;
  TermId person, student, city, team;

  MeasureFixture() {
    person = before.DeclareClass("http://x/Person");
    student = before.DeclareClass("http://x/Student");
    city = before.DeclareClass("http://x/City");
    team = before.DeclareClass("http://x/Team");
    before.AddIriTriple("http://x/Student",
                        "http://www.w3.org/2000/01/rdf-schema#subClassOf",
                        "http://x/Person");
    before.AddIriTriple("http://x/Team",
                        "http://www.w3.org/2000/01/rdf-schema#subClassOf",
                        "http://x/City");
    before.DeclareProperty("http://x/worksIn", "http://x/Person",
                           "http://x/City");
    before.DeclareProperty("http://x/knows", "http://x/Person",
                           "http://x/Person");
    for (int i = 0; i < 4; ++i) {
      before.AddIriTriple("http://x/p" + std::to_string(i),
                          "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
                          "http://x/Person");
    }
    before.AddIriTriple("http://x/rome",
                        "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
                        "http://x/City");
    before.AddIriTriple("http://x/p0", "http://x/worksIn", "http://x/rome");
    before.AddIriTriple("http://x/p0", "http://x/knows", "http://x/p1");

    after = before;
    // Instance churn on Person. Only `knows` gains an edge, so the
    // connection ratios (relative cardinalities) genuinely change.
    after.AddIriTriple("http://x/p9",
                       "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
                       "http://x/Person");
    after.AddIriTriple("http://x/p2", "http://x/knows", "http://x/p3");
    // Team reparented City → Person (topology shift).
    const auto& voc = after.vocabulary();
    after.store().Remove({team, voc.rdfs_subclass_of, city});
    after.store().Add({team, voc.rdfs_subclass_of, person});
  }

  EvolutionContext Context() const {
    auto ctx = EvolutionContext::Build(before, after);
    EXPECT_TRUE(ctx.ok()) << ctx.status().ToString();
    return std::move(ctx).value();
  }
};

TEST(EvolutionContextTest, RejectsForeignDictionaries) {
  KnowledgeBase a;
  KnowledgeBase b;  // different dictionary
  auto ctx = EvolutionContext::Build(a, b);
  EXPECT_FALSE(ctx.ok());
  EXPECT_EQ(ctx.status().code(), StatusCode::kInvalidArgument);
}

TEST(EvolutionContextTest, ExposesAlignedArtifacts) {
  MeasureFixture f;
  const EvolutionContext ctx = f.Context();
  EXPECT_FALSE(ctx.union_classes().empty());
  // Each version's graph covers that version's own class set (the
  // per-version reusable artefact); the scattered accessors are the
  // union-aligned view.
  EXPECT_EQ(ctx.graph_before().graph().node_count(),
            ctx.view_before().classes().size());
  EXPECT_EQ(ctx.graph_after().graph().node_count(),
            ctx.view_after().classes().size());
  EXPECT_EQ(ctx.betweenness_before().size(), ctx.union_classes().size());
  EXPECT_EQ(ctx.betweenness_after().size(), ctx.union_classes().size());
  EXPECT_EQ(ctx.raw_betweenness_before().size(),
            ctx.graph_before().graph().node_count());
  EXPECT_GT(ctx.low_level_delta().size(), 0u);
}

TEST(EvolutionContextTest, UnionScatterZeroFillsAbsentClasses) {
  // `after` drops class B entirely: B stays in the union universe with
  // betweenness 0, and classes present in both versions keep the value
  // of their own-universe graph.
  rdf::KnowledgeBase before;
  before.DeclareClass("http://x/A");
  before.DeclareClass("http://x/B");
  before.DeclareClass("http://x/C");
  before.AddIriTriple("http://x/B",
                      "http://www.w3.org/2000/01/rdf-schema#subClassOf",
                      "http://x/A");
  before.AddIriTriple("http://x/C",
                      "http://www.w3.org/2000/01/rdf-schema#subClassOf",
                      "http://x/B");
  rdf::KnowledgeBase after = before;
  const rdf::TermId b =
      before.dictionary().Find(rdf::Term::Iri("http://x/B"));
  const auto& voc = after.vocabulary();
  const rdf::TermId a =
      before.dictionary().Find(rdf::Term::Iri("http://x/A"));
  const rdf::TermId c =
      before.dictionary().Find(rdf::Term::Iri("http://x/C"));
  after.store().Remove({b, voc.rdf_type, voc.rdfs_class});
  after.store().Remove({b, voc.rdfs_subclass_of, a});
  after.store().Remove({c, voc.rdfs_subclass_of, b});
  auto ctx = EvolutionContext::Build(before, after);
  ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
  ASSERT_LT(ctx->view_after().classes().size(),
            ctx->union_classes().size());
  const auto& union_classes = ctx->union_classes();
  const auto& scattered = ctx->betweenness_after();
  for (size_t i = 0; i < union_classes.size(); ++i) {
    if (union_classes[i] == b) {
      EXPECT_DOUBLE_EQ(scattered[i], 0.0);  // absent → isolated → 0
    }
  }
  // In `before`, B sits on the only A–C path.
  const auto& before_scatter = ctx->betweenness_before();
  const size_t bi = ctx->delta_index().UnionClassIndexOf(b);
  ASSERT_NE(bi, rdf::kNotInUniverse);
  EXPECT_GT(before_scatter[bi], 0.0);
}

TEST(ClassChangeCountTest, ScoresChurnedClassesHighest) {
  MeasureFixture f;
  const EvolutionContext ctx = f.Context();
  ClassChangeCountMeasure measure;
  auto report = measure.Compute(ctx);
  ASSERT_TRUE(report.ok());
  // Person saw: 1 type addition + 2 instance edges (both endpoints
  // Person for knows, one endpoint for worksIn) + subclass re-attach.
  EXPECT_GT(report->ScoreOf(f.person), report->ScoreOf(f.student));
  EXPECT_GT(report->ScoreOf(f.person), 0.0);
  // Every class of the union universe is present in the report.
  EXPECT_EQ(report->size(), ctx.union_classes().size());
}

TEST(ClassChangeCountTest, DirectVariantIgnoresInstanceEdges) {
  MeasureFixture f;
  const EvolutionContext ctx = f.Context();
  ClassChangeCountMeasure extended(/*extended=*/true);
  ClassChangeCountMeasure direct(/*extended=*/false);
  auto ext_report = extended.Compute(ctx);
  auto dir_report = direct.Compute(ctx);
  ASSERT_TRUE(ext_report.ok());
  ASSERT_TRUE(dir_report.ok());
  EXPECT_GT(ext_report->ScoreOf(f.person), dir_report->ScoreOf(f.person));
  EXPECT_NE(extended.info().name, direct.info().name);
}

TEST(PropertyChangeCountTest, CountsPredicateUsage) {
  MeasureFixture f;
  const EvolutionContext ctx = f.Context();
  PropertyChangeCountMeasure measure;
  auto report = measure.Compute(ctx);
  ASSERT_TRUE(report.ok());
  const TermId works_in =
      f.before.dictionary().Find(rdf::Term::Iri("http://x/worksIn"));
  const TermId knows =
      f.before.dictionary().Find(rdf::Term::Iri("http://x/knows"));
  EXPECT_DOUBLE_EQ(report->ScoreOf(knows), 1.0);   // one new edge
  EXPECT_DOUBLE_EQ(report->ScoreOf(works_in), 0.0);  // untouched
  EXPECT_EQ(measure.info().scope, MeasureScope::kProperty);
}

TEST(NeighborhoodChangeTest, NeighborsOfChurnSeeIt) {
  MeasureFixture f;
  const EvolutionContext ctx = f.Context();
  NeighborhoodChangeCountMeasure measure;
  auto report = measure.Compute(ctx);
  ASSERT_TRUE(report.ok());
  // Student has no direct changes but neighbors Person.
  EXPECT_GT(report->ScoreOf(f.student), 0.0);
  ClassChangeCountMeasure counts;
  auto count_report = counts.Compute(ctx);
  ASSERT_TRUE(count_report.ok());
  EXPECT_DOUBLE_EQ(count_report->ScoreOf(f.student), 0.0);
}

TEST(StructuralShiftTest, ReparentingMovesBetweenness) {
  MeasureFixture f;
  const EvolutionContext ctx = f.Context();
  BetweennessShiftMeasure betweenness_shift;
  auto report = betweenness_shift.Compute(ctx);
  ASSERT_TRUE(report.ok());
  // The reparented class or its old/new parents must register a shift.
  const double total = report->TotalScore();
  EXPECT_GT(total, 0.0);
  for (const ScoredTerm& s : report->scores()) {
    EXPECT_GE(s.score, 0.0);
  }
}

TEST(StructuralShiftTest, NoChangesMeansZeroShift) {
  KnowledgeBase kb;
  kb.DeclareClass("http://x/A");
  kb.DeclareClass("http://x/B");
  kb.AddIriTriple("http://x/B",
                  "http://www.w3.org/2000/01/rdf-schema#subClassOf",
                  "http://x/A");
  auto ctx = EvolutionContext::Build(kb, kb);
  ASSERT_TRUE(ctx.ok());
  BetweennessShiftMeasure measure;
  auto report = measure.Compute(*ctx);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->TotalScore(), 0.0);
  BridgingShiftMeasure bridging;
  auto bridging_report = bridging.Compute(*ctx);
  ASSERT_TRUE(bridging_report.ok());
  EXPECT_DOUBLE_EQ(bridging_report->TotalScore(), 0.0);
}

TEST(CentralityTest, RelativeCardinalityDefinition) {
  MeasureFixture f;
  const schema::SchemaView view = schema::SchemaView::Build(f.before);
  const TermId works_in =
      f.before.dictionary().Find(rdf::Term::Iri("http://x/worksIn"));
  // worksIn Person→City: 1 connection; totals: Person 2 (1 worksIn +
  // 1 knows), City 1 → RC = 1/3.
  EXPECT_NEAR(RelativeCardinality(view, works_in, f.person, f.city),
              1.0 / 3.0, 1e-9);
  // Unseen pair → 0.
  EXPECT_DOUBLE_EQ(RelativeCardinality(view, works_in, f.city, f.person),
                   0.0);
}

TEST(CentralityTest, DirectionsDecompose) {
  MeasureFixture f;
  const schema::SchemaView view = schema::SchemaView::Build(f.after);
  const auto in = ComputeCentrality(view, CentralityDirection::kIn);
  const auto out = ComputeCentrality(view, CentralityDirection::kOut);
  const auto total = ComputeCentrality(view, CentralityDirection::kTotal);
  for (const auto& [cls, value] : total) {
    const double in_v = in.count(cls) ? in.at(cls) : 0.0;
    const double out_v = out.count(cls) ? out.at(cls) : 0.0;
    EXPECT_NEAR(value, in_v + out_v, 1e-9) << "class " << cls;
  }
  // City only receives edges → no out-centrality.
  EXPECT_DOUBLE_EQ(out.at(f.city), 0.0);
  EXPECT_GT(in.at(f.city), 0.0);
}

TEST(CentralityShiftTest, InstanceChurnShiftsSemanticCentrality) {
  MeasureFixture f;
  const EvolutionContext ctx = f.Context();
  CentralityShiftMeasure measure(CentralityDirection::kTotal);
  auto report = measure.Compute(ctx);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->TotalScore(), 0.0);
  EXPECT_EQ(measure.info().category, MeasureCategory::kSemantic);
}

TEST(RelevanceTest, DataRichCentralClassesScoreHigher) {
  MeasureFixture f;
  const schema::SchemaView view = schema::SchemaView::Build(f.before);
  const auto relevance = ComputeRelevance(view);
  // Person: central (two properties) and data-rich (4 instances).
  EXPECT_GT(relevance.at(f.person), relevance.at(f.team));
}

TEST(RelevanceShiftTest, RespondsToChurn) {
  MeasureFixture f;
  const EvolutionContext ctx = f.Context();
  RelevanceShiftMeasure measure;
  auto report = measure.Compute(ctx);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->TotalScore(), 0.0);
}

// ------------------------------------------------------ MeasureReport

TEST(MeasureReportTest, SortTopKAndNormalize) {
  MeasureReport report;
  report.Add(1, 5.0);
  report.Add(2, 1.0);
  report.Add(3, 9.0);
  const auto top2 = report.TopK(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].term, 3u);
  EXPECT_EQ(top2[1].term, 1u);
  EXPECT_EQ(report.TopKTerms(1), (std::vector<TermId>{3}));

  const MeasureReport normalized = report.Normalized();
  EXPECT_DOUBLE_EQ(normalized.ScoreOf(3), 1.0);
  EXPECT_DOUBLE_EQ(normalized.ScoreOf(2), 0.0);
  EXPECT_DOUBLE_EQ(normalized.ScoreOf(1), 0.5);
}

TEST(MeasureReportTest, TiesBreakByTermId) {
  MeasureReport report;
  report.Add(9, 1.0);
  report.Add(3, 1.0);
  report.Add(7, 1.0);
  EXPECT_EQ(report.TopKTerms(3), (std::vector<TermId>{3, 7, 9}));
}

TEST(MeasureReportTest, AlignedScores) {
  MeasureReport report;
  report.Add(5, 2.0);
  report.Add(10, 4.0);
  const std::vector<TermId> universe = {1, 5, 10, 20};
  EXPECT_EQ(report.AlignedScores(universe),
            (std::vector<double>{0.0, 2.0, 4.0, 0.0}));
}

TEST(MeasureReportTest, ConstantReportNormalizesToZero) {
  MeasureReport report;
  report.Add(1, 4.0);
  report.Add(2, 4.0);
  const MeasureReport normalized = report.Normalized();
  EXPECT_DOUBLE_EQ(normalized.ScoreOf(1), 0.0);
  EXPECT_DOUBLE_EQ(normalized.ScoreOf(2), 0.0);
}

TEST(MeasureReportTest, TopKOverlapIsJaccard) {
  MeasureReport a;
  a.Add(1, 3.0);
  a.Add(2, 2.0);
  a.Add(3, 1.0);
  MeasureReport b;
  b.Add(2, 3.0);
  b.Add(3, 2.0);
  b.Add(4, 1.0);
  // Top-3 sets {1,2,3} vs {2,3,4}: |∩|=2, |∪|=4.
  EXPECT_DOUBLE_EQ(TopKOverlap(a, b, 3), 0.5);
}

}  // namespace
}  // namespace evorec::measures
