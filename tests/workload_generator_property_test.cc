// Seed-stability properties of every workload generator: the replay
// suite's byte-identity assertions (scenario_replay_test) and the
// recorded-bench convention both stand on "same seed, same bytes" —
// regenerating a scenario or a stream with one seed must reproduce it
// exactly, across runs and across thread counts, while different
// seeds must diverge.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "evorec.h"

namespace evorec {
namespace {

using version::ShardedKnowledgeBase;
using version::VersionId;
using workload::StreamMode;
using workload::WorkloadStream;

workload::Scenario SmallScenario(uint64_t seed) {
  workload::ScenarioScale scale;
  scale.classes = 24;
  scale.properties = 10;
  scale.instances = 150;
  scale.edges = 300;
  scale.versions = 2;
  scale.operations = 60;
  return workload::MakeDbpediaLike(seed, scale);
}

workload::WorkloadStream SmallStream(workload::Scenario& scenario,
                                     StreamMode mode, uint64_t seed) {
  workload::StreamOptions options;
  options.mode = mode;
  options.reads = 24;
  options.commits = 4;
  options.population = 8;
  options.ops_per_commit = 6;
  options.flap_block = 5;
  options.seed = seed;
  return workload::GenerateStream(scenario, options);
}

bool SameProfile(const profile::HumanProfile& a,
                 const profile::HumanProfile& b) {
  return a.id() == b.id() && a.interests() == b.interests();
}

bool SameChanges(const version::ChangeSet& a, const version::ChangeSet& b) {
  return a.additions == b.additions && a.removals == b.removals;
}

bool SameStream(const WorkloadStream& a, const WorkloadStream& b) {
  if (a.name != b.name || a.mode != b.mode || a.base_head != b.base_head ||
      a.read_count != b.read_count || a.commit_count != b.commit_count ||
      a.change_triples != b.change_triples ||
      a.events.size() != b.events.size() || a.users.size() != b.users.size()) {
    return false;
  }
  for (size_t i = 0; i < a.users.size(); ++i) {
    if (!SameProfile(a.users[i], b.users[i])) return false;
  }
  for (size_t i = 0; i < a.events.size(); ++i) {
    const workload::StreamEvent& x = a.events[i];
    const workload::StreamEvent& y = b.events[i];
    if (x.kind != y.kind || x.timestamp_us != y.timestamp_us ||
        x.user != y.user || x.before != y.before || x.after != y.after ||
        !SameChanges(x.changes, y.changes)) {
      return false;
    }
  }
  return true;
}

std::vector<uint64_t> FingerprintChain(const version::KbView& view) {
  std::vector<uint64_t> chain;
  for (VersionId v = 0; v < view.version_count(); ++v) {
    chain.push_back(view.Handle(v).value().fingerprint);
  }
  return chain;
}

TEST(GeneratorSeedStabilityTest, SchemaAndInstancesAreByteIdenticalPerSeed) {
  workload::SchemaGenOptions schema_options;
  schema_options.class_count = 20;
  schema_options.property_count = 8;
  schema_options.seed = 5;
  workload::GeneratedSchema a = workload::GenerateSchema(schema_options);
  workload::GeneratedSchema b = workload::GenerateSchema(schema_options);
  EXPECT_EQ(a.classes, b.classes);
  EXPECT_EQ(a.properties, b.properties);
  EXPECT_EQ(a.kb.store().triples(), b.kb.store().triples());

  workload::InstanceGenOptions instance_options;
  instance_options.instance_count = 80;
  instance_options.edge_count = 120;
  instance_options.seed = 6;
  workload::PopulateInstances(a, instance_options);
  workload::PopulateInstances(b, instance_options);
  EXPECT_EQ(a.kb.store().triples(), b.kb.store().triples());

  schema_options.seed = 7;
  workload::GeneratedSchema c = workload::GenerateSchema(schema_options);
  EXPECT_NE(a.kb.store().triples(), c.kb.store().triples());
}

TEST(GeneratorSeedStabilityTest, EvolutionAndProfilesAreByteIdenticalPerSeed) {
  workload::Scenario first = SmallScenario(31);
  workload::Scenario second = SmallScenario(31);
  auto head_a = first.vkb->Snapshot(first.vkb->head());
  auto head_b = second.vkb->Snapshot(second.vkb->head());
  ASSERT_TRUE(head_a.ok());
  ASSERT_TRUE(head_b.ok());

  workload::EvolutionOptions evo;
  evo.operations = 40;
  evo.epoch = 9;
  evo.seed = 77;
  workload::EvolutionOutcome out_a =
      workload::GenerateEvolution(**head_a, first.vkb->dictionary(), evo);
  workload::EvolutionOutcome out_b =
      workload::GenerateEvolution(**head_b, second.vkb->dictionary(), evo);
  EXPECT_TRUE(SameChanges(out_a.changes, out_b.changes));
  EXPECT_EQ(out_a.hot_classes, out_b.hot_classes);

  evo.seed = 78;
  workload::EvolutionOutcome out_c =
      workload::GenerateEvolution(**head_a, first.vkb->dictionary(), evo);
  EXPECT_FALSE(SameChanges(out_a.changes, out_c.changes));

  const schema::SchemaView view_a = schema::SchemaView::Build(**head_a);
  const schema::SchemaView view_b = schema::SchemaView::Build(**head_b);
  Rng rng_a(404);
  Rng rng_b(404);
  workload::ProfileGenOptions prof_options;
  profile::HumanProfile prof_a =
      workload::GenerateProfile("u", view_a, prof_options, rng_a);
  profile::HumanProfile prof_b =
      workload::GenerateProfile("u", view_b, prof_options, rng_b);
  EXPECT_TRUE(SameProfile(prof_a, prof_b));
}

TEST(GeneratorSeedStabilityTest, ScenarioHistoriesShareFingerprintChains) {
  workload::Scenario a = SmallScenario(19);
  workload::Scenario b = SmallScenario(19);
  version::SingleKbView view_a(*a.vkb);
  version::SingleKbView view_b(*b.vkb);
  EXPECT_EQ(FingerprintChain(view_a), FingerprintChain(view_b));
  EXPECT_EQ(a.classes, b.classes);
  EXPECT_EQ(a.curators.members().size(), b.curators.members().size());
  for (size_t i = 0; i < a.curators.members().size(); ++i) {
    EXPECT_TRUE(
        SameProfile(a.curators.members()[i], b.curators.members()[i]));
  }

  workload::Scenario c = SmallScenario(20);
  version::SingleKbView view_c(*c.vkb);
  EXPECT_NE(FingerprintChain(view_a), FingerprintChain(view_c));
}

TEST(StreamGeneratorPropertyTest, StreamsAreByteIdenticalPerSeed) {
  for (StreamMode mode :
       {StreamMode::kBurstyCommits, StreamMode::kZipfReads,
        StreamMode::kAdversarialChurn, StreamMode::kSchemaShockwave}) {
    workload::Scenario first = SmallScenario(41);
    workload::Scenario second = SmallScenario(41);
    WorkloadStream stream_a = SmallStream(first, mode, 900);
    WorkloadStream stream_b = SmallStream(second, mode, 900);
    EXPECT_TRUE(SameStream(stream_a, stream_b))
        << workload::StreamModeName(mode);

    workload::Scenario third = SmallScenario(41);
    WorkloadStream stream_c = SmallStream(third, mode, 901);
    EXPECT_FALSE(SameStream(stream_a, stream_c))
        << workload::StreamModeName(mode);
  }
}

TEST(StreamGeneratorPropertyTest, StreamsInterleaveBothEventKinds) {
  workload::Scenario scenario = SmallScenario(43);
  WorkloadStream stream =
      SmallStream(scenario, StreamMode::kBurstyCommits, 910);
  EXPECT_EQ(stream.read_count, 24u);
  EXPECT_EQ(stream.commit_count, 4u);
  EXPECT_EQ(stream.events.size(), 28u);
  uint64_t last_ts = 0;
  for (const workload::StreamEvent& event : stream.events) {
    EXPECT_GT(event.timestamp_us, last_ts);
    last_ts = event.timestamp_us;
    if (event.kind == workload::StreamEvent::Kind::kRead) {
      EXPECT_LT(event.user, stream.users.size());
      EXPECT_EQ(event.after, event.before + 1);
    } else {
      EXPECT_FALSE(event.changes.empty());
    }
  }
}

// The thread-count leg: replaying one history into sharded KBs that
// commit their shards serially vs on a 4-thread pool must yield
// identical per-version fingerprint chains (and so identical engine
// cache keys).
TEST(StreamGeneratorPropertyTest, ShardReplayChainsAreThreadCountInvariant) {
  workload::Scenario scenario = SmallScenario(47);
  WorkloadStream stream = SmallStream(scenario, StreamMode::kZipfReads, 920);

  ThreadPool pool(4);
  auto replay = [&](ThreadPool* commit_pool) {
    auto base = scenario.vkb->Snapshot(0);
    EXPECT_TRUE(base.ok());
    auto sharded = std::make_unique<ShardedKnowledgeBase>(
        ShardedKnowledgeBase::Options{.shards = 4, .pool = commit_pool},
        **base);
    for (VersionId v = 1; v <= scenario.vkb->head(); ++v) {
      auto cs = scenario.vkb->Changes(v);
      EXPECT_TRUE(cs.ok());
      EXPECT_TRUE(sharded->Commit(std::move(cs).value(), "replay", "v", v).ok());
    }
    for (const workload::StreamEvent& event : stream.events) {
      if (event.kind != workload::StreamEvent::Kind::kCommit) continue;
      version::ChangeSet copy = event.changes;
      EXPECT_TRUE(
          sharded->Commit(std::move(copy), "stream", "c", event.timestamp_us)
              .ok());
    }
    return sharded;
  };

  std::unique_ptr<ShardedKnowledgeBase> serial = replay(nullptr);
  std::unique_ptr<ShardedKnowledgeBase> pooled = replay(&pool);
  EXPECT_EQ(FingerprintChain(*serial), FingerprintChain(*pooled));
  EXPECT_EQ(serial->head(), stream.base_head + stream.commit_count);
}

}  // namespace
}  // namespace evorec
