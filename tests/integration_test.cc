// End-to-end integration: scenarios → versioned history → context →
// measures → recommender, with provenance and anonymity attached —
// the full processing model of the paper in one test binary.

#include <gtest/gtest.h>

#include "evorec.h"

namespace evorec {
namespace {

workload::ScenarioScale TestScale() {
  workload::ScenarioScale scale;
  scale.classes = 50;
  scale.properties = 20;
  scale.instances = 500;
  scale.edges = 900;
  scale.versions = 3;
  scale.operations = 200;
  return scale;
}

TEST(IntegrationTest, FullPipelineOnDbpediaLike) {
  workload::Scenario scenario = workload::MakeDbpediaLike(31, TestScale());
  auto ctx = measures::EvolutionContext::FromVersions(
      *scenario.vkb, scenario.vkb->head() - 1, scenario.vkb->head());
  ASSERT_TRUE(ctx.ok());

  // Every default measure computes a full report over the union
  // universe.
  const measures::MeasureRegistry registry = measures::DefaultRegistry();
  for (const auto& measure : registry.CreateAll()) {
    auto report = measure->Compute(*ctx);
    ASSERT_TRUE(report.ok()) << measure->info().name;
    for (const auto& scored : report->scores()) {
      EXPECT_GE(scored.score, 0.0) << measure->info().name;
    }
  }

  // Recommender with provenance produces an explained package.
  provenance::ProvenanceStore prov;
  recommend::Recommender recommender(registry, {});
  recommender.AttachProvenance(&prov);
  auto list = recommender.RecommendForUser(*ctx, scenario.end_user);
  ASSERT_TRUE(list.ok());
  EXPECT_FALSE(list->items.empty());
  EXPECT_GT(prov.size(), 0u);

  // Explanations are renderable and carry the measure story.
  for (const auto& item : list->items) {
    const std::string text = item.explanation.ToText();
    EXPECT_NE(text.find("measure"), std::string::npos);
    EXPECT_NE(text.find(item.candidate.measure.name), std::string::npos);
  }
}

TEST(IntegrationTest, HotClassesSurfaceInChangeCountRanking) {
  workload::Scenario scenario = workload::MakeDbpediaLike(37, TestScale());
  auto ctx = measures::EvolutionContext::FromVersions(
      *scenario.vkb, scenario.vkb->head() - 1, scenario.vkb->head());
  ASSERT_TRUE(ctx.ok());

  measures::ClassChangeCountMeasure measure;
  auto report = measure.Compute(*ctx);
  ASSERT_TRUE(report.ok());
  const auto top = report->TopKTerms(10);
  size_t hits = 0;
  for (rdf::TermId hot : scenario.hot_classes) {
    if (std::find(top.begin(), top.end(), hot) != top.end()) ++hits;
  }
  // The planted hotspots dominate the ranking (at least 2 of 3 in the
  // top 10).
  EXPECT_GE(hits, 2u);
}

TEST(IntegrationTest, DeltaChainPolicyIsDropInReplacement) {
  // Build the same history under both archive policies; measures agree
  // exactly.
  workload::SchemaGenOptions schema_options;
  schema_options.class_count = 30;
  workload::GeneratedSchema generated =
      workload::GenerateSchema(schema_options);
  workload::InstanceGenOptions instance_options;
  instance_options.instance_count = 200;
  instance_options.edge_count = 300;
  workload::PopulateInstances(generated, instance_options);

  version::VersionedKnowledgeBase full(
      version::ArchivePolicy::kFullMaterialization, generated.kb);
  version::VersionedKnowledgeBase chain(version::ArchivePolicy::kDeltaChain,
                                        generated.kb);

  workload::EvolutionOptions evolution_options;
  evolution_options.operations = 120;
  const workload::EvolutionOutcome outcome = workload::GenerateEvolution(
      generated.kb, generated.kb.dictionary(), evolution_options);
  (void)full.Commit(outcome.changes, "t", "v1");
  (void)chain.Commit(outcome.changes, "t", "v1");

  auto ctx_full = measures::EvolutionContext::FromVersions(full, 0, 1);
  auto ctx_chain = measures::EvolutionContext::FromVersions(chain, 0, 1);
  ASSERT_TRUE(ctx_full.ok());
  ASSERT_TRUE(ctx_chain.ok());

  const measures::MeasureRegistry registry = measures::DefaultRegistry();
  for (const auto& measure : registry.CreateAll()) {
    auto a = measure->Compute(*ctx_full);
    auto b = measure->Compute(*ctx_chain);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size()) << measure->info().name;
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_DOUBLE_EQ(a->scores()[i].score, b->scores()[i].score)
          << measure->info().name;
    }
  }
}

TEST(IntegrationTest, AnonymousAggregateReportFromEvolution) {
  // Build the §III.e flow: per-class change counts → aggregate table →
  // k-anonymised view.
  workload::Scenario scenario = workload::MakeClinicalKb(41, TestScale());
  auto ctx = measures::EvolutionContext::FromVersions(
      *scenario.vkb, scenario.vkb->head() - 1, scenario.vkb->head());
  ASSERT_TRUE(ctx.ok());

  const auto head = scenario.vkb->Snapshot(scenario.vkb->head());
  ASSERT_TRUE(head.ok());
  const schema::SchemaView view = schema::SchemaView::Build(**head);

  anonymity::AggregateTable table({"class"}, "changes");
  for (rdf::TermId cls : ctx->union_classes()) {
    const size_t changes = ctx->delta_index().ExtendedChanges(cls);
    const size_t population = view.InstanceCount(cls);
    if (population == 0) continue;
    ASSERT_TRUE(table
                    .AddRow({(*head)->dictionary().term(cls).lexical},
                            static_cast<double>(changes), population)
                    .ok());
  }
  ASSERT_GT(table.row_count(), 0u);

  const anonymity::ValueHierarchy taxonomy =
      anonymity::ValueHierarchy::FromClassHierarchy(view.hierarchy(),
                                                    (*head)->dictionary());
  auto result = anonymity::Anonymize(table, 5, {taxonomy});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(anonymity::IsKAnonymous(result->table, 5));
  EXPECT_LE(anonymity::ReidentificationRisk(result->table), 1.0 / 5.0);
}

TEST(IntegrationTest, GroupPackageAvoidsAlwaysLeastSatisfiedMember) {
  workload::Scenario scenario = workload::MakeDbpediaLike(43, TestScale());
  auto ctx = measures::EvolutionContext::FromVersions(
      *scenario.vkb, scenario.vkb->head() - 1, scenario.vkb->head());
  ASSERT_TRUE(ctx.ok());
  const measures::MeasureRegistry registry = measures::DefaultRegistry();

  recommend::RecommenderOptions options;
  options.group.fairness_aware = true;
  options.group.diversify = false;
  recommend::Recommender recommender(registry, options);
  auto list = recommender.RecommendForGroup(*ctx, scenario.curators);
  ASSERT_TRUE(list.ok());
  // Fairness-aware packages should avoid the paper's pathological
  // pattern whenever the pool permits; at minimum the diagnostics are
  // reported.
  EXPECT_EQ(list->fairness.satisfaction.size(), scenario.curators.size());
  EXPECT_GE(list->fairness.mean_satisfaction,
            list->fairness.min_satisfaction);
}

TEST(IntegrationTest, NTriplesExportReimportPreservesMeasures) {
  workload::Scenario scenario = workload::MakeSocialFeed(47, TestScale());
  const auto v1 = scenario.vkb->Snapshot(scenario.vkb->head() - 1);
  const auto v2 = scenario.vkb->Snapshot(scenario.vkb->head());
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());

  // Export both snapshots, reimport into a fresh shared dictionary.
  auto dict = std::make_shared<rdf::Dictionary>();
  rdf::KnowledgeBase before(dict);
  rdf::KnowledgeBase after(dict);
  ASSERT_TRUE(rdf::ParseNTriples(
                  rdf::WriteNTriples((*v1)->store(), (*v1)->dictionary()),
                  *dict, before.store())
                  .ok());
  ASSERT_TRUE(rdf::ParseNTriples(
                  rdf::WriteNTriples((*v2)->store(), (*v2)->dictionary()),
                  *dict, after.store())
                  .ok());

  auto ctx_orig = measures::EvolutionContext::FromVersions(
      *scenario.vkb, scenario.vkb->head() - 1, scenario.vkb->head());
  auto ctx_reimported = measures::EvolutionContext::Build(before, after);
  ASSERT_TRUE(ctx_orig.ok());
  ASSERT_TRUE(ctx_reimported.ok());
  // Same |δ| and same total change-count mass (term ids differ, counts
  // must not).
  EXPECT_EQ(ctx_orig->low_level_delta().size(),
            ctx_reimported->low_level_delta().size());
  measures::ClassChangeCountMeasure measure;
  auto a = measure.Compute(*ctx_orig);
  auto b = measure.Compute(*ctx_reimported);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->TotalScore(), b->TotalScore());
}

}  // namespace
}  // namespace evorec
