#include "anonymity/kanonymity.h"

#include <gtest/gtest.h>

#include "anonymity/access_policy.h"
#include "anonymity/aggregate.h"
#include "anonymity/anonymizer.h"
#include "anonymity/generalization.h"
#include "schema/hierarchy.h"

namespace evorec::anonymity {
namespace {

AggregateTable PatientTable() {
  // QI columns: (diagnosis class, region). Counts = patients.
  AggregateTable table({"diagnosis", "region"}, "changes");
  EXPECT_TRUE(table.AddRow({"Flu", "North"}, 12.0, 6).ok());
  EXPECT_TRUE(table.AddRow({"Flu", "South"}, 8.0, 4).ok());
  EXPECT_TRUE(table.AddRow({"RareDisease", "North"}, 3.0, 1).ok());
  EXPECT_TRUE(table.AddRow({"RareDisease", "South"}, 2.0, 1).ok());
  return table;
}

ValueHierarchy DiagnosisHierarchy() {
  ValueHierarchy vh;
  vh.AddParent("Flu", "Respiratory");
  vh.AddParent("RareDisease", "Chronic");
  vh.AddParent("Respiratory", "Disease");
  vh.AddParent("Chronic", "Disease");
  return vh;
}

ValueHierarchy RegionHierarchy() {
  ValueHierarchy vh;
  vh.AddParent("North", "Country");
  vh.AddParent("South", "Country");
  return vh;
}

TEST(AggregateTableTest, RowValidationAndTotals) {
  AggregateTable table({"a", "b"}, "v");
  EXPECT_FALSE(table.AddRow({"only-one"}, 1.0).ok());
  EXPECT_TRUE(table.AddRow({"x", "y"}, 2.0, 3).ok());
  EXPECT_TRUE(table.AddRow({"x", "y"}, 1.0, 2).ok());
  EXPECT_EQ(table.row_count(), 2u);
  EXPECT_EQ(table.TotalCount(), 5u);

  const AggregateTable merged = table.MergedGroups();
  EXPECT_EQ(merged.row_count(), 1u);
  EXPECT_DOUBLE_EQ(merged.rows()[0].value, 3.0);
  EXPECT_EQ(merged.rows()[0].count, 5u);
}

TEST(KAnonymityTest, ChecksGroups) {
  const AggregateTable table = PatientTable();
  EXPECT_TRUE(IsKAnonymous(table, 1));
  EXPECT_FALSE(IsKAnonymous(table, 2));  // RareDisease groups of 1
  EXPECT_EQ(EquivalenceGroups(table).size(), 4u);
  EXPECT_EQ(ViolatingGroups(table, 2).size(), 2u);
  EXPECT_EQ(ViolatingGroups(table, 5).size(), 3u);
}

TEST(KAnonymityTest, EmptyTableIsAnonymous) {
  AggregateTable table({"x"}, "v");
  EXPECT_TRUE(IsKAnonymous(table, 100));
  EXPECT_DOUBLE_EQ(ReidentificationRisk(table), 0.0);
}

TEST(KAnonymityTest, ReidentificationRisk) {
  const AggregateTable table = PatientTable();
  // Smallest group has count 1 → risk 1.
  EXPECT_DOUBLE_EQ(ReidentificationRisk(table), 1.0);
  AggregateTable safe({"c"}, "v");
  (void)safe.AddRow({"x"}, 1.0, 10);
  (void)safe.AddRow({"y"}, 1.0, 20);
  EXPECT_DOUBLE_EQ(ReidentificationRisk(safe), 0.1);
}

TEST(ValueHierarchyTest, GeneralizeClimbsToRoot) {
  const ValueHierarchy vh = DiagnosisHierarchy();
  EXPECT_EQ(vh.Generalize("Flu", 0), "Flu");
  EXPECT_EQ(vh.Generalize("Flu", 1), "Respiratory");
  EXPECT_EQ(vh.Generalize("Flu", 2), "Disease");
  EXPECT_EQ(vh.Generalize("Flu", 3), "*");
  EXPECT_EQ(vh.Generalize("Flu", 99), "*");
  // Unknown values jump straight to root.
  EXPECT_EQ(vh.Generalize("Unknown", 1), "*");
  EXPECT_EQ(vh.HeightOf("Flu"), 3u);
  EXPECT_EQ(vh.MaxHeight(), 3u);
}

TEST(ValueHierarchyTest, FromClassHierarchy) {
  schema::ClassHierarchy hierarchy;
  hierarchy.AddEdge(1, 0);
  hierarchy.AddEdge(2, 0);
  rdf::Dictionary dict;
  // Ids 0..2 in the dictionary.
  (void)dict.InternIri("Root");
  (void)dict.InternIri("A");
  (void)dict.InternIri("B");
  const ValueHierarchy vh =
      ValueHierarchy::FromClassHierarchy(hierarchy, dict);
  EXPECT_EQ(vh.Generalize("A", 1), "Root");
  EXPECT_EQ(vh.Generalize("B", 1), "Root");
  EXPECT_EQ(vh.Generalize("Root", 1), "*");
}

TEST(AnonymizerTest, OutputIsAlwaysKAnonymous) {
  const AggregateTable table = PatientTable();
  const std::vector<ValueHierarchy> hierarchies = {DiagnosisHierarchy(),
                                                   RegionHierarchy()};
  for (size_t k : {2u, 3u, 5u, 12u}) {
    auto result = Anonymize(table, k, hierarchies);
    ASSERT_TRUE(result.ok()) << "k=" << k;
    EXPECT_TRUE(IsKAnonymous(result->table, k)) << "k=" << k;
  }
}

TEST(AnonymizerTest, GeneralizationPreferredOverSuppression) {
  const AggregateTable table = PatientTable();
  const std::vector<ValueHierarchy> hierarchies = {DiagnosisHierarchy(),
                                                   RegionHierarchy()};
  auto result = Anonymize(table, 2, hierarchies);
  ASSERT_TRUE(result.ok());
  // Merging North/South (region level 1) makes every diagnosis group
  // reach k=2 without suppression.
  EXPECT_EQ(result->suppressed_count, 0u);
  EXPECT_EQ(result->table.TotalCount(), table.TotalCount());
  EXPECT_GT(result->information_loss, 0.0);
  EXPECT_LT(result->information_loss, 1.0);
}

TEST(AnonymizerTest, InformationLossGrowsWithK) {
  const AggregateTable table = PatientTable();
  const std::vector<ValueHierarchy> hierarchies = {DiagnosisHierarchy(),
                                                   RegionHierarchy()};
  auto k2 = Anonymize(table, 2, hierarchies);
  auto k12 = Anonymize(table, 12, hierarchies);
  ASSERT_TRUE(k2.ok());
  ASSERT_TRUE(k12.ok());
  EXPECT_LE(k2->information_loss, k12->information_loss);
}

TEST(AnonymizerTest, ImpossibleKSuppressesEverything) {
  AggregateTable table({"c"}, "v");
  (void)table.AddRow({"x"}, 1.0, 2);
  ValueHierarchy vh;  // only generalisation to '*'
  auto result = Anonymize(table, 10, {vh});
  ASSERT_TRUE(result.ok());
  // A 2-individual table cannot reach k=10: all rows suppressed.
  EXPECT_EQ(result->table.row_count(), 0u);
  EXPECT_EQ(result->suppressed_count, 2u);
  EXPECT_TRUE(IsKAnonymous(result->table, 10));
}

TEST(AnonymizerTest, ValidatesColumnCounts) {
  const AggregateTable table = PatientTable();
  EXPECT_FALSE(Anonymize(table, 2, {DiagnosisHierarchy()}).ok());
  EXPECT_FALSE(
      GeneralizeTable(table, {1}, {DiagnosisHierarchy()}).ok());
}

// -------------------------------------------------------- AccessPolicy

TEST(AccessPolicyTest, DenyByDefaultOnSensitive) {
  AccessPolicy policy;
  policy.MarkSensitive(7);
  EXPECT_TRUE(policy.IsSensitive(7));
  EXPECT_FALSE(policy.IsSensitive(8));
  EXPECT_TRUE(policy.CheckAccess("anyone", 8).ok());
  EXPECT_EQ(policy.CheckAccess("anyone", 7).code(),
            StatusCode::kPermissionDenied);
}

TEST(AccessPolicyTest, GrantsAreAgentAndTermSpecific) {
  AccessPolicy policy;
  policy.MarkSensitive(7);
  policy.MarkSensitive(8);
  policy.Grant("ann", 7);
  EXPECT_TRUE(policy.CheckAccess("ann", 7).ok());
  EXPECT_FALSE(policy.CheckAccess("ann", 8).ok());
  EXPECT_FALSE(policy.CheckAccess("bob", 7).ok());
  policy.GrantAll("dpo");
  EXPECT_TRUE(policy.CheckAccess("dpo", 7).ok());
  EXPECT_TRUE(policy.CheckAccess("dpo", 8).ok());
}

TEST(AccessPolicyTest, FilterReportRedacts) {
  AccessPolicy policy;
  policy.MarkSensitive(2);
  measures::MeasureReport report;
  report.Add(1, 1.0);
  report.Add(2, 5.0);
  report.Add(3, 2.0);
  size_t redacted = 0;
  const measures::MeasureReport filtered =
      policy.FilterReport("bob", report, &redacted);
  EXPECT_EQ(filtered.size(), 2u);
  EXPECT_EQ(redacted, 1u);
  EXPECT_DOUBLE_EQ(filtered.ScoreOf(2), 0.0);
  // A granted agent sees everything.
  policy.Grant("ann", 2);
  const measures::MeasureReport full =
      policy.FilterReport("ann", report, &redacted);
  EXPECT_EQ(full.size(), 3u);
  EXPECT_EQ(redacted, 0u);
}

}  // namespace
}  // namespace evorec::anonymity
