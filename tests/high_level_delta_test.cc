#include "delta/high_level_delta.h"

#include <gtest/gtest.h>

#include "delta/low_level_delta.h"
#include "rdf/knowledge_base.h"

namespace evorec::delta {
namespace {

using rdf::KnowledgeBase;
using rdf::TermId;

HighLevelDelta Detect(const KnowledgeBase& before,
                      const KnowledgeBase& after) {
  const LowLevelDelta delta = ComputeLowLevelDelta(before, after);
  return DetectHighLevelChanges(delta, schema::SchemaView::Build(before),
                                schema::SchemaView::Build(after),
                                before.vocabulary());
}

size_t CountKind(const HighLevelDelta& hld, HighLevelChangeKind kind) {
  auto counts = hld.CountsByKind();
  auto it = counts.find(kind);
  return it == counts.end() ? 0 : it->second;
}

TEST(HighLevelDeltaTest, DetectsAddAndDeleteClass) {
  KnowledgeBase before;
  before.DeclareClass("http://x/Old");
  KnowledgeBase after(before.shared_dictionary());
  after.DeclareClass("http://x/New");

  const HighLevelDelta hld = Detect(before, after);
  EXPECT_EQ(CountKind(hld, HighLevelChangeKind::kAddClass), 1u);
  EXPECT_EQ(CountKind(hld, HighLevelChangeKind::kDeleteClass), 1u);
  EXPECT_DOUBLE_EQ(hld.coverage, 1.0);
}

TEST(HighLevelDeltaTest, DetectsMoveClassAsOnePattern) {
  KnowledgeBase before;
  before.DeclareClass("http://x/A");
  before.DeclareClass("http://x/B");
  before.DeclareClass("http://x/C");
  before.AddIriTriple("http://x/C",
                      "http://www.w3.org/2000/01/rdf-schema#subClassOf",
                      "http://x/A");
  KnowledgeBase after = before;
  const auto& voc = after.vocabulary();
  const TermId c = after.dictionary().Find(rdf::Term::Iri("http://x/C"));
  const TermId a = after.dictionary().Find(rdf::Term::Iri("http://x/A"));
  const TermId b = after.dictionary().Find(rdf::Term::Iri("http://x/B"));
  after.store().Remove({c, voc.rdfs_subclass_of, a});
  after.store().Add({c, voc.rdfs_subclass_of, b});

  const HighLevelDelta hld = Detect(before, after);
  EXPECT_EQ(CountKind(hld, HighLevelChangeKind::kMoveClass), 1u);
  EXPECT_EQ(CountKind(hld, HighLevelChangeKind::kAttachSubclass), 0u);
  EXPECT_EQ(CountKind(hld, HighLevelChangeKind::kDetachSubclass), 0u);
  // The move explains both low-level triples.
  EXPECT_DOUBLE_EQ(hld.coverage, 1.0);
  // The event carries old and new parent.
  bool found = false;
  for (const HighLevelChange& change : hld.changes) {
    if (change.kind == HighLevelChangeKind::kMoveClass) {
      EXPECT_EQ(change.focus, c);
      EXPECT_EQ(change.before_value, a);
      EXPECT_EQ(change.after_value, b);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(HighLevelDeltaTest, UnpairedSubclassEdgesBecomeAttachDetach) {
  KnowledgeBase before;
  before.DeclareClass("http://x/A");
  before.DeclareClass("http://x/B");
  KnowledgeBase after = before;
  after.AddIriTriple("http://x/B",
                     "http://www.w3.org/2000/01/rdf-schema#subClassOf",
                     "http://x/A");
  const HighLevelDelta hld = Detect(before, after);
  EXPECT_EQ(CountKind(hld, HighLevelChangeKind::kAttachSubclass), 1u);
  EXPECT_EQ(CountKind(hld, HighLevelChangeKind::kMoveClass), 0u);
}

TEST(HighLevelDeltaTest, DetectsDomainAndRangeChanges) {
  KnowledgeBase before;
  before.DeclareClass("http://x/A");
  before.DeclareClass("http://x/B");
  before.DeclareProperty("http://x/p", "http://x/A", "http://x/A");
  KnowledgeBase after = before;
  const auto& voc = after.vocabulary();
  const TermId p = after.dictionary().Find(rdf::Term::Iri("http://x/p"));
  const TermId a = after.dictionary().Find(rdf::Term::Iri("http://x/A"));
  const TermId b = after.dictionary().Find(rdf::Term::Iri("http://x/B"));
  after.store().Remove({p, voc.rdfs_domain, a});
  after.store().Add({p, voc.rdfs_domain, b});
  after.store().Add({p, voc.rdfs_range, b});  // second range (add only)

  const HighLevelDelta hld = Detect(before, after);
  EXPECT_EQ(CountKind(hld, HighLevelChangeKind::kChangeDomain), 1u);
  EXPECT_EQ(CountKind(hld, HighLevelChangeKind::kAddRange), 1u);
  EXPECT_EQ(CountKind(hld, HighLevelChangeKind::kChangeRange), 0u);
}

TEST(HighLevelDeltaTest, DetectsInstanceLifecycle) {
  KnowledgeBase before;
  before.DeclareClass("http://x/A");
  before.DeclareClass("http://x/B");
  before.AddIriTriple("http://x/i1",
                      "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
                      "http://x/A");
  before.AddIriTriple("http://x/i2",
                      "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
                      "http://x/A");
  KnowledgeBase after = before;
  const auto& voc = after.vocabulary();
  const TermId i1 = after.dictionary().Find(rdf::Term::Iri("http://x/i1"));
  const TermId i2 = after.dictionary().Find(rdf::Term::Iri("http://x/i2"));
  const TermId a = after.dictionary().Find(rdf::Term::Iri("http://x/A"));
  const TermId b = after.dictionary().Find(rdf::Term::Iri("http://x/B"));
  // i1 retyped A → B; i2 deleted; i3 added.
  after.store().Remove({i1, voc.rdf_type, a});
  after.store().Add({i1, voc.rdf_type, b});
  after.store().Remove({i2, voc.rdf_type, a});
  after.AddIriTriple("http://x/i3",
                     "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
                     "http://x/B");

  const HighLevelDelta hld = Detect(before, after);
  EXPECT_EQ(CountKind(hld, HighLevelChangeKind::kRetypeInstance), 1u);
  EXPECT_EQ(CountKind(hld, HighLevelChangeKind::kDeleteInstance), 1u);
  EXPECT_EQ(CountKind(hld, HighLevelChangeKind::kAddInstance), 1u);
  EXPECT_DOUBLE_EQ(hld.coverage, 1.0);
}

TEST(HighLevelDeltaTest, DetectsInstanceEdgesAndLabels) {
  KnowledgeBase before;
  before.DeclareClass("http://x/A");
  before.AddIriTriple("http://x/i1", "http://x/knows", "http://x/i2");
  before.AddLiteralTriple("http://x/A",
                          "http://www.w3.org/2000/01/rdf-schema#label",
                          "old label");
  KnowledgeBase after = before;
  const auto& voc = after.vocabulary();
  const TermId a = after.dictionary().Find(rdf::Term::Iri("http://x/A"));
  const TermId old_label =
      after.dictionary().Find(rdf::Term::Literal("old label"));
  after.store().Remove(
      {after.dictionary().Find(rdf::Term::Iri("http://x/i1")),
       after.dictionary().Find(rdf::Term::Iri("http://x/knows")),
       after.dictionary().Find(rdf::Term::Iri("http://x/i2"))});
  after.store().Remove({a, voc.rdfs_label, old_label});
  after.AddLiteralTriple("http://x/A",
                         "http://www.w3.org/2000/01/rdf-schema#label",
                         "new label");

  const HighLevelDelta hld = Detect(before, after);
  EXPECT_EQ(CountKind(hld, HighLevelChangeKind::kDeleteInstanceEdge), 1u);
  EXPECT_EQ(CountKind(hld, HighLevelChangeKind::kChangeLabel), 1u);
}

TEST(HighLevelDeltaTest, DetectsRenameAcrossResources) {
  // A class is deleted, a new one appears, and the old label moves
  // verbatim to the new IRI — the rename pattern.
  KnowledgeBase before;
  before.DeclareClass("http://x/OldName");
  before.AddLiteralTriple("http://x/OldName",
                          "http://www.w3.org/2000/01/rdf-schema#label",
                          "Shared Label");
  KnowledgeBase after(before.shared_dictionary());
  after.DeclareClass("http://x/NewName");
  after.AddLiteralTriple("http://x/NewName",
                         "http://www.w3.org/2000/01/rdf-schema#label",
                         "Shared Label");

  const HighLevelDelta hld = Detect(before, after);
  EXPECT_EQ(CountKind(hld, HighLevelChangeKind::kRenameResource), 1u);
  EXPECT_EQ(CountKind(hld, HighLevelChangeKind::kAddLabel), 0u);
  EXPECT_EQ(CountKind(hld, HighLevelChangeKind::kDeleteLabel), 0u);
  const TermId old_id =
      before.dictionary().Find(rdf::Term::Iri("http://x/OldName"));
  const TermId new_id =
      before.dictionary().Find(rdf::Term::Iri("http://x/NewName"));
  for (const HighLevelChange& c : hld.changes) {
    if (c.kind == HighLevelChangeKind::kRenameResource) {
      EXPECT_EQ(c.focus, new_id);
      EXPECT_EQ(c.before_value, old_id);
    }
  }
  // Delta: 2 class decls + 2 labels; rename (2) + Add/DeleteClass (2)
  // explain all of it.
  EXPECT_DOUBLE_EQ(hld.coverage, 1.0);
}

TEST(HighLevelDeltaTest, SameSubjectLabelChangeBeatsRename) {
  // If the same subject swaps labels, it is a ChangeLabel even when
  // another resource adds the old label text.
  KnowledgeBase before;
  before.DeclareClass("http://x/A");
  before.DeclareClass("http://x/B");
  before.AddLiteralTriple("http://x/A",
                          "http://www.w3.org/2000/01/rdf-schema#label",
                          "alpha");
  KnowledgeBase after = before;
  const auto& voc = after.vocabulary();
  const TermId a = after.dictionary().Find(rdf::Term::Iri("http://x/A"));
  const TermId alpha = after.dictionary().Find(rdf::Term::Literal("alpha"));
  after.store().Remove({a, voc.rdfs_label, alpha});
  after.AddLiteralTriple("http://x/A",
                         "http://www.w3.org/2000/01/rdf-schema#label",
                         "beta");
  const HighLevelDelta hld = Detect(before, after);
  EXPECT_EQ(CountKind(hld, HighLevelChangeKind::kChangeLabel), 1u);
  EXPECT_EQ(CountKind(hld, HighLevelChangeKind::kRenameResource), 0u);
}

TEST(HighLevelDeltaTest, EmptyDeltaHasFullCoverage) {
  KnowledgeBase kb;
  kb.DeclareClass("http://x/A");
  const HighLevelDelta hld = Detect(kb, kb);
  EXPECT_TRUE(hld.changes.empty());
  EXPECT_DOUBLE_EQ(hld.coverage, 1.0);
}

TEST(HighLevelDeltaTest, KindNamesAreStable) {
  EXPECT_EQ(HighLevelChangeKindName(HighLevelChangeKind::kMoveClass),
            "MoveClass");
  EXPECT_EQ(HighLevelChangeKindName(HighLevelChangeKind::kRetypeInstance),
            "RetypeInstance");
  EXPECT_EQ(HighLevelChangeKindName(HighLevelChangeKind::kChangeDomain),
            "ChangeDomain");
}

}  // namespace
}  // namespace evorec::delta
