// Differential suite for the dynamic betweenness path:
// BetweennessAdvance must be bit-identical to a from-scratch
// BetweennessExactWithPartials of the new graph — for every pool
// size, every delta shape, and across long chains of updates — while
// its stats prove the work stays proportional to the affected-source
// frontier, not the graph.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "graph/betweenness.h"
#include "graph/graph.h"

namespace evorec::graph {
namespace {

using EdgeSet = std::set<std::pair<NodeId, NodeId>>;

Graph FromSet(size_t n, const EdgeSet& edges) {
  std::vector<std::pair<NodeId, NodeId>> list(edges.begin(), edges.end());
  return Graph::FromEdges(n, std::move(list));
}

// Canonical (a < b) random edge avoiding self-loops.
std::pair<NodeId, NodeId> RandomEdge(size_t n, Rng& rng) {
  while (true) {
    const auto a = static_cast<NodeId>(
        rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    const auto b = static_cast<NodeId>(
        rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    if (a == b) continue;
    return {std::min(a, b), std::max(a, b)};
  }
}

EdgeSet RandomEdges(size_t n, size_t m, Rng& rng) {
  EdgeSet edges;
  while (edges.size() < m) edges.insert(RandomEdge(n, rng));
  return edges;
}

// Flips `k` random edge slots: present edges are removed, absent ones
// added — both delta directions in one step.
void FlipEdges(size_t n, EdgeSet& edges, size_t k, Rng& rng) {
  for (size_t i = 0; i < k; ++i) {
    const auto e = RandomEdge(n, rng);
    if (!edges.erase(e)) edges.insert(e);
  }
}

void ExpectBitIdentical(const std::vector<double>& expected,
                        const std::vector<double>& actual,
                        const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(std::memcmp(&expected[i], &actual[i], sizeof(double)), 0)
        << label << " index " << i << ": " << expected[i]
        << " != " << actual[i];
  }
}

// The full resumable state must match — the scores callers read and
// the per-chunk sums the *next* advance will splice from.
void ExpectPartialsIdentical(const BetweennessPartials& expected,
                             const BetweennessPartials& actual,
                             const std::string& label) {
  ExpectBitIdentical(expected.scores, actual.scores, label + " scores");
  ASSERT_EQ(expected.chunks.size(), actual.chunks.size()) << label;
  for (size_t c = 0; c < expected.chunks.size(); ++c) {
    ExpectBitIdentical(expected.chunks[c], actual.chunks[c],
                       label + " chunk " + std::to_string(c));
  }
}

TEST(DynamicBetweennessTest, AdvanceMatchesFullRecomputeBitwise) {
  const size_t n = 80;
  for (uint64_t seed : {3u, 19u, 71u}) {
    Rng rng(seed);
    EdgeSet edges = RandomEdges(n, 180, rng);
    Graph old_g = FromSet(n, edges);
    BetweennessPartials previous = BetweennessExactWithPartials(old_g);
    for (size_t step = 0; step < 8; ++step) {
      FlipEdges(n, edges, 1 + step % 4, rng);
      Graph new_g = FromSet(n, edges);
      const BetweennessPartials fresh = BetweennessExactWithPartials(new_g);
      const std::string label =
          "seed " + std::to_string(seed) + " step " + std::to_string(step);
      // Serial advance.
      BetweennessAdvanceStats stats;
      BetweennessPartials advanced =
          BetweennessAdvance(old_g, previous, new_g, 1.0, &stats);
      ExpectPartialsIdentical(fresh, advanced, label + " serial");
      EXPECT_TRUE(stats.incremental) << label;
      // Pool sizes must not perturb a single bit.
      for (size_t threads : {2u, 8u}) {
        ThreadPool pool(threads);
        BetweennessPartials pooled = BetweennessAdvance(
            old_g, previous, new_g, 1.0, nullptr, &pool);
        ExpectPartialsIdentical(fresh, pooled,
                                label + " pool " + std::to_string(threads));
      }
      old_g = std::move(new_g);
      previous = std::move(advanced);  // chain: advance from advanced state
    }
  }
}

TEST(DynamicBetweennessTest, EmptyDeltaReturnsPreviousUntouched) {
  Rng rng(5);
  const size_t n = 40;
  const EdgeSet edges = RandomEdges(n, 90, rng);
  const Graph g = FromSet(n, edges);
  const BetweennessPartials previous = BetweennessExactWithPartials(g);
  BetweennessAdvanceStats stats;
  const BetweennessPartials same =
      BetweennessAdvance(g, previous, FromSet(n, edges), 0.5, &stats);
  EXPECT_TRUE(stats.incremental);
  EXPECT_EQ(stats.touched_nodes, 0u);
  EXPECT_EQ(stats.affected_sources, 0u);
  EXPECT_EQ(stats.recomputed_sources, 0u);
  EXPECT_EQ(stats.recomputed_chunks, 0u);
  ExpectPartialsIdentical(previous, same, "no-op advance");
}

TEST(DynamicBetweennessTest, ChurnThresholdForcesFullRecompute) {
  Rng rng(9);
  const size_t n = 40;
  EdgeSet edges = RandomEdges(n, 90, rng);
  const Graph old_g = FromSet(n, edges);
  const BetweennessPartials previous = BetweennessExactWithPartials(old_g);
  FlipEdges(n, edges, 2, rng);
  const Graph new_g = FromSet(n, edges);
  // Threshold 0: any touched node at all exceeds it.
  BetweennessAdvanceStats stats;
  const BetweennessPartials full =
      BetweennessAdvance(old_g, previous, new_g, 0.0, &stats);
  EXPECT_FALSE(stats.incremental);
  EXPECT_EQ(stats.recomputed_sources, n);
  EXPECT_EQ(stats.recomputed_chunks, stats.total_chunks);
  ExpectPartialsIdentical(BetweennessExactWithPartials(new_g), full,
                          "forced full");
}

TEST(DynamicBetweennessTest, NodeCountChangeFallsBackToFull) {
  Rng rng(13);
  const EdgeSet edges = RandomEdges(30, 60, rng);
  const Graph old_g = FromSet(30, edges);
  const BetweennessPartials previous = BetweennessExactWithPartials(old_g);
  const Graph grown = FromSet(31, edges);  // universe churn: indices shift
  BetweennessAdvanceStats stats;
  const BetweennessPartials result =
      BetweennessAdvance(old_g, previous, grown, 1.0, &stats);
  EXPECT_FALSE(stats.incremental);
  ExpectPartialsIdentical(BetweennessExactWithPartials(grown), result,
                          "node-count fallback");
}

TEST(DynamicBetweennessTest, ComponentIsolationBoundsAffectedSources) {
  // Two components: a 6-clique (nodes 0..5) and a long path (6..59).
  // An edge flip inside the clique can only affect sources that reach
  // it — the frontier must stop at the component boundary.
  const size_t n = 60;
  EdgeSet edges;
  for (NodeId i = 0; i < 6; ++i) {
    for (NodeId j = i + 1; j < 6; ++j) edges.insert({i, j});
  }
  for (NodeId i = 6; i + 1 < n; ++i) edges.insert({i, static_cast<NodeId>(i + 1)});
  const Graph old_g = FromSet(n, edges);
  const BetweennessPartials previous = BetweennessExactWithPartials(old_g);
  edges.erase({0, 1});
  const Graph new_g = FromSet(n, edges);
  BetweennessAdvanceStats stats;
  const BetweennessPartials advanced =
      BetweennessAdvance(old_g, previous, new_g, 1.0, &stats);
  EXPECT_TRUE(stats.incremental);
  EXPECT_EQ(stats.touched_nodes, 2u);
  EXPECT_EQ(stats.affected_sources, 6u);  // the clique, nothing of the path
  EXPECT_LT(stats.recomputed_chunks, stats.total_chunks);
  ExpectPartialsIdentical(BetweennessExactWithPartials(new_g), advanced,
                          "component isolation");
}

TEST(DynamicBetweennessTest, WorkStaysProportionalOnFragmentedGraph) {
  // Many small components: one flipped edge must leave almost every
  // chunk untouched. 32 separate 8-node cycles.
  const size_t kComponents = 32, kSize = 8;
  const size_t n = kComponents * kSize;
  EdgeSet edges;
  for (size_t c = 0; c < kComponents; ++c) {
    const auto base = static_cast<NodeId>(c * kSize);
    for (size_t i = 0; i < kSize; ++i) {
      const auto a = static_cast<NodeId>(base + i);
      const auto b = static_cast<NodeId>(base + (i + 1) % kSize);
      edges.insert({std::min(a, b), std::max(a, b)});
    }
  }
  const Graph old_g = FromSet(n, edges);
  const BetweennessPartials previous = BetweennessExactWithPartials(old_g);
  edges.insert({0, 4});  // chord inside component 0 only
  const Graph new_g = FromSet(n, edges);
  BetweennessAdvanceStats stats;
  const BetweennessPartials advanced =
      BetweennessAdvance(old_g, previous, new_g, 0.5, &stats);
  EXPECT_TRUE(stats.incremental);
  EXPECT_EQ(stats.affected_sources, kSize);  // exactly component 0
  // Chunk granularity may round up, but never past two grid cells for
  // an 8-source frontier on a 256-source grid.
  EXPECT_LE(stats.recomputed_chunks, 2u);
  EXPECT_GT(stats.total_chunks, 8u);
  ExpectPartialsIdentical(BetweennessExactWithPartials(new_g), advanced,
                          "fragmented");
}

TEST(DynamicBetweennessTest, GridIsPureFunctionOfSourceCount) {
  for (size_t count : {0u, 1u, 3u, 4u, 5u, 127u, 128u, 129u, 4096u}) {
    const BrandesChunkGrid grid = BrandesGridFor(count);
    if (count == 0) {
      EXPECT_EQ(grid.chunk_count, 0u);
      continue;
    }
    // Chunks cover every source (trailing chunks may be empty — the
    // count is capped, so per_chunk is a ceiling).
    EXPECT_GE(grid.per_chunk, 1u);
    EXPECT_GE(grid.chunk_count * grid.per_chunk, count);
    EXPECT_EQ(grid.ChunkOf(0), 0u);
    EXPECT_LT(grid.ChunkOf(count - 1), grid.chunk_count);
  }
}

}  // namespace
}  // namespace evorec::graph
