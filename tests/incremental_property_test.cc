// The incremental-refresh differential harness: a randomized commit
// stream (mixed schema surgery, instance churn, renames/moves — every
// generator operation) is driven through EvaluationEngine's
// CommitAndRefresh, and after EVERY commit the refreshed head
// evaluation is compared field by field — union universes, low-level
// delta, delta-index statistics, union-aligned betweenness, full
// measure reports — against a cold rebuild by an engine that never
// refreshes. Equality is exact (bit-identical doubles), not
// approximate: the incremental path must be indistinguishable from
// starting over. Four seeds × 250 commits = 1000 differential checks.
//
// The same suite pins the proportionality contract (IncrementalStats
// bookkeeping identities, churn-threshold fallback) and the
// fingerprint-salted sampled-mode determinism regression.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "delta/low_level_delta.h"
#include "engine/evaluation_engine.h"
#include "engine/recommendation_service.h"
#include "measures/measure_context.h"
#include "measures/registry.h"
#include "version/versioned_kb.h"
#include "workload/evolution_generator.h"
#include "workload/scenarios.h"

namespace evorec::engine {
namespace {

workload::Scenario BaseScenario(uint64_t seed) {
  workload::ScenarioScale scale;
  scale.classes = 36;
  scale.properties = 12;
  scale.instances = 200;
  scale.edges = 400;
  scale.versions = 1;  // one committed transition: refresh has a history
  scale.operations = 60;
  return workload::MakeDbpediaLike(seed, scale);
}

// The commit stream: operation mix and size rotate so the stream
// exercises every generator operation — class add/delete/move,
// property add, domain change, instance add/delete/retype, edge
// add/delete — at commit sizes from near-empty to bulk.
workload::EvolutionOptions StepOptions(size_t step, uint64_t seed) {
  workload::EvolutionOptions options;
  static constexpr size_t kSizes[] = {4, 12, 40, 90};
  options.operations = kSizes[step % 4];
  switch (step % 3) {
    case 0: break;  // default mix
    case 1: options.mix = workload::ChangeMix::SchemaHeavy(); break;
    case 2: options.mix = workload::ChangeMix::InstanceChurn(); break;
  }
  options.epoch = 100 + step;
  options.seed = seed * 1000 + step;
  return options;
}

void ExpectBitIdentical(const std::vector<double>& expected,
                        const std::vector<double>& actual,
                        const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(std::memcmp(&expected[i], &actual[i], sizeof(double)), 0)
        << label << " index " << i << ": " << expected[i]
        << " != " << actual[i];
  }
}

// Every observable field of the refreshed context must equal the cold
// one — and both deltas must equal the O(T) store diff recomputed
// right here (validating DeltaFromCandidates against ground truth).
void ExpectIdenticalContexts(const measures::EvolutionContext& refreshed,
                             const measures::EvolutionContext& cold,
                             const std::string& label) {
  ASSERT_EQ(refreshed.union_classes(), cold.union_classes()) << label;
  ASSERT_EQ(refreshed.union_properties(), cold.union_properties()) << label;

  const delta::LowLevelDelta ground_truth =
      delta::ComputeLowLevelDelta(refreshed.before(), refreshed.after());
  EXPECT_EQ(refreshed.low_level_delta().added, ground_truth.added) << label;
  EXPECT_EQ(refreshed.low_level_delta().removed, ground_truth.removed)
      << label;
  EXPECT_EQ(cold.low_level_delta().added, ground_truth.added) << label;
  EXPECT_EQ(cold.low_level_delta().removed, ground_truth.removed) << label;

  const delta::DeltaIndex& ri = refreshed.delta_index();
  const delta::DeltaIndex& ci = cold.delta_index();
  EXPECT_EQ(ri.total_changes(), ci.total_changes()) << label;
  for (size_t i = 0; i < ri.union_classes().size(); ++i) {
    EXPECT_EQ(ri.ExtendedChangesAt(i), ci.ExtendedChangesAt(i))
        << label << " class index " << i;
    EXPECT_EQ(ri.NeighborhoodChangesAt(i), ci.NeighborhoodChangesAt(i))
        << label << " class index " << i;
  }

  ExpectBitIdentical(cold.betweenness_before(), refreshed.betweenness_before(),
                     label + " betweenness_before");
  ExpectBitIdentical(cold.betweenness_after(), refreshed.betweenness_after(),
                     label + " betweenness_after");
}

void ExpectIdenticalReports(const SharedEvaluation& refreshed,
                            const SharedEvaluation& cold,
                            const std::string& label) {
  auto a = refreshed.AllReports();
  auto b = cold.AllReports();
  ASSERT_TRUE(a.ok()) << label << ": " << a.status().ToString();
  ASSERT_TRUE(b.ok()) << label << ": " << b.status().ToString();
  ASSERT_EQ(a->size(), b->size()) << label;
  for (size_t r = 0; r < a->size(); ++r) {
    const measures::MeasureReport& ra = *(*a)[r];
    const measures::MeasureReport& rb = *(*b)[r];
    ASSERT_EQ(ra.size(), rb.size()) << label << " report " << r;
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra.scores()[i].term, rb.scores()[i].term)
          << label << " report " << r;
      // Exact: refresh must not perturb a single bit of any score.
      EXPECT_EQ(ra.scores()[i].score, rb.scores()[i].score)
          << label << " report " << r << " term " << ra.scores()[i].term;
    }
  }
}

class RefreshDifferentialTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(RefreshDifferentialTest, RefreshMatchesColdRebuildEveryCommit) {
  const uint64_t seed = GetParam();
  constexpr size_t kCommits = 250;
  workload::Scenario scenario = BaseScenario(seed);
  version::VersionedKnowledgeBase& vkb = *scenario.vkb;

  measures::MeasureRegistry registry = measures::DefaultRegistry();
  EvaluationEngine warm(registry, {.threads = 2});
  // The reference engine never refreshes: every head pair it serves is
  // built by the classic cold path (per-version artefacts + store
  // diff + cold delta index).
  EvaluationEngine cold(registry, {.threads = 2});

  for (size_t step = 0; step < kCommits; ++step) {
    const std::string label =
        "seed " + std::to_string(seed) + " commit " + std::to_string(step);
    auto current = vkb.Snapshot(vkb.head());
    ASSERT_TRUE(current.ok()) << label;
    workload::EvolutionOutcome outcome = workload::GenerateEvolution(
        **current, vkb.dictionary(), StepOptions(step, seed));

    auto refreshed = warm.CommitAndRefresh(vkb, std::move(outcome.changes),
                                           "harness", "step");
    ASSERT_TRUE(refreshed.ok()) << label << ": "
                                << refreshed.status().ToString();
    ASSERT_EQ(refreshed->version, vkb.head()) << label;

    auto rebuilt = cold.Evaluate(vkb, vkb.head() - 1, vkb.head());
    ASSERT_TRUE(rebuilt.ok()) << label << ": " << rebuilt.status().ToString();

    ExpectIdenticalContexts(refreshed->evaluation->context(),
                            (*rebuilt)->context(), label);
    ExpectIdenticalReports(*refreshed->evaluation, **rebuilt, label);
    if (HasFatalFailure() || HasNonfatalFailure()) {
      FAIL() << "divergence at " << label;
    }
  }

  // The warm engine really took the incremental path, and its
  // bookkeeping is self-consistent: every refresh is accounted for by
  // exactly one of advanced / full fallback / stayed-lazy.
  EXPECT_EQ(warm.stats().contexts_refreshed, kCommits);
  const IncrementalStats inc = warm.incremental_stats();
  EXPECT_EQ(inc.refreshes, kCommits);
  EXPECT_EQ(inc.advanced + inc.full_recomputes + inc.stayed_lazy,
            inc.refreshes);
  // Reports are forced after every commit, so predecessors are warm:
  // commits that keep the class universe stable advance; the rest
  // (class adds/deletes churn the node space, or the frontier blows
  // past the threshold) legitimately fall back — both paths are hit.
  EXPECT_GT(inc.advanced, 0u);
  EXPECT_GT(inc.full_recomputes, 0u);
  EXPECT_LE(inc.recomputed_sources, inc.total_sources);
  // The cold reference never refreshed anything.
  EXPECT_EQ(cold.incremental_stats().refreshes, 0u);
  EXPECT_EQ(cold.stats().contexts_refreshed, 0u);
}

INSTANTIATE_TEST_SUITE_P(CommitStreams, RefreshDifferentialTest,
                         ::testing::Values(11u, 23u, 37u, 51u));

TEST(RefreshStatsTest, InstanceChurnAdvancesWithBoundedRecompute) {
  // Pure instance churn keeps the class universe fixed (no class
  // adds/deletes), so with a permissive churn threshold every warm
  // refresh must take the advance path — and the recompute counters
  // must show strictly less work than recomputing every source each
  // commit. (Instance churn still perturbs class-graph *adjacency* —
  // first/last instance edges between a class pair — so the frontier
  // is small but not empty.)
  workload::Scenario scenario = BaseScenario(77);
  version::VersionedKnowledgeBase& vkb = *scenario.vkb;
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  EvaluationEngine engine(registry,
                          {.threads = 1, .refresh_churn_threshold = 1.0});

  constexpr size_t kCommits = 6;
  for (size_t step = 0; step < kCommits; ++step) {
    auto current = vkb.Snapshot(vkb.head());
    ASSERT_TRUE(current.ok());
    workload::EvolutionOptions options;
    options.operations = 10;
    options.mix = workload::ChangeMix::InstanceChurn();
    options.epoch = 500 + step;
    options.seed = 900 + step;
    workload::EvolutionOutcome outcome = workload::GenerateEvolution(
        **current, vkb.dictionary(), options);
    auto refreshed = engine.CommitAndRefresh(vkb, std::move(outcome.changes),
                                             "harness", "churn");
    ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
    // Force betweenness so the next step's predecessor is warm.
    refreshed->evaluation->context().betweenness_after();
  }

  const IncrementalStats inc = engine.incremental_stats();
  EXPECT_EQ(inc.refreshes, kCommits);
  // Class universe never churns and the threshold never trips: no
  // full fallbacks at all.
  EXPECT_EQ(inc.full_recomputes, 0u);
  // First refresh finds a lazy predecessor (nothing forced it yet);
  // every later one advances.
  EXPECT_EQ(inc.advanced, kCommits - 1);
  EXPECT_EQ(inc.stayed_lazy, 1u);
  EXPECT_GT(inc.total_sources, 0u);
  // Chunk granularity can round the frontier up, never down.
  EXPECT_LE(inc.affected_sources, inc.recomputed_sources);
  // The proportionality claim: across the whole run the advance path
  // recomputed strictly fewer sources than full recomputes would have
  // (kCommits-1 warm refreshes × every source).
  EXPECT_LT(inc.recomputed_sources, (kCommits - 1) * inc.total_sources);
}

TEST(RefreshStatsTest, ZeroChurnThresholdForcesFullRecompute) {
  workload::Scenario scenario = BaseScenario(81);
  version::VersionedKnowledgeBase& vkb = *scenario.vkb;
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  EvaluationEngine engine(registry,
                          {.threads = 1, .refresh_churn_threshold = 0.0});

  constexpr size_t kCommits = 4;
  for (size_t step = 0; step < kCommits; ++step) {
    auto current = vkb.Snapshot(vkb.head());
    ASSERT_TRUE(current.ok());
    workload::EvolutionOptions options;
    options.operations = 30;
    options.mix = workload::ChangeMix::SchemaHeavy();
    options.epoch = 700 + step;
    options.seed = 300 + step;
    workload::EvolutionOutcome outcome = workload::GenerateEvolution(
        **current, vkb.dictionary(), options);
    auto refreshed = engine.CommitAndRefresh(vkb, std::move(outcome.changes),
                                             "harness", "schema");
    ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
    refreshed->evaluation->context().betweenness_after();
  }

  const IncrementalStats inc = engine.incremental_stats();
  EXPECT_EQ(inc.refreshes, kCommits);
  // Threshold 0: any topology change at all falls back — advances can
  // only happen for commits that left the class graph untouched.
  EXPECT_EQ(inc.advanced + inc.full_recomputes + inc.stayed_lazy,
            inc.refreshes);
  EXPECT_GE(inc.full_recomputes, 1u);
  // Full fallbacks recompute every source; advances at threshold 0 can
  // only be empty-frontier ones, contributing nothing.
  EXPECT_GT(inc.recomputed_sources, 0u);
  EXPECT_LE(inc.recomputed_sources, inc.total_sources);
}

TEST(RefreshServiceTest, ServiceCommitServesFreshRecommendations) {
  // The service-level write path: Commit refreshes and pre-warms, so a
  // recommendation served right after is both warm (no extra context
  // build) and identical to one served by a never-refreshed service.
  workload::Scenario scenario = BaseScenario(91);
  version::VersionedKnowledgeBase& vkb = *scenario.vkb;
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  ServiceOptions service_options;
  service_options.engine.threads = 2;
  RecommendationService service(registry, service_options);
  RecommendationService reference(registry, service_options);

  auto current = vkb.Snapshot(vkb.head());
  ASSERT_TRUE(current.ok());
  workload::EvolutionOptions options;
  options.operations = 25;
  options.epoch = 42;
  options.seed = 4242;
  workload::EvolutionOutcome outcome = workload::GenerateEvolution(
      **current, vkb.dictionary(), options);

  auto committed = service.Commit(vkb, std::move(outcome.changes), "svc",
                                  "service commit");
  ASSERT_TRUE(committed.ok()) << committed.status().ToString();
  const version::VersionId head = *committed;
  ASSERT_EQ(head, vkb.head());

  const EngineStats before_serve = service.engine_stats();
  profile::HumanProfile user = scenario.end_user;
  auto warm_list = service.Recommend(vkb, head - 1, head, user);
  ASSERT_TRUE(warm_list.ok()) << warm_list.status().ToString();
  // Serving after Commit is a pure hit: no context was built for it.
  EXPECT_EQ(service.engine_stats().contexts_built,
            before_serve.contexts_built);

  profile::HumanProfile ref_user = scenario.end_user;
  auto cold_list = reference.Recommend(vkb, head - 1, head, ref_user);
  ASSERT_TRUE(cold_list.ok()) << cold_list.status().ToString();
  ASSERT_EQ(warm_list->items.size(), cold_list->items.size());
  for (size_t i = 0; i < warm_list->items.size(); ++i) {
    EXPECT_EQ(warm_list->items[i].candidate.id, cold_list->items[i].candidate.id);
    EXPECT_EQ(warm_list->items[i].relatedness, cold_list->items[i].relatedness);
    EXPECT_EQ(warm_list->items[i].novelty, cold_list->items[i].novelty);
  }
}

TEST(SampledDeterminismTest, FingerprintSaltIsStableAcrossPathsAndInstances) {
  // Regression for the sampled-mode seeding fix: engine-built sampled
  // contexts draw pivots from SampledSeedFor(options, version
  // fingerprint), so the sample is a stable property of version
  // content — identical between a cold build and an incremental
  // refresh, and across engine/vkb instances with identical histories.
  measures::ContextOptions sampled;
  sampled.betweenness_mode = measures::BetweennessMode::kSampled;
  sampled.betweenness_pivots = 8;
  sampled.seed = 5;

  workload::Scenario a = BaseScenario(63);
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  EvaluationEngine refresher(registry, {.threads = 1});

  auto current = a.vkb->Snapshot(a.vkb->head());
  ASSERT_TRUE(current.ok());
  workload::EvolutionOptions options;
  options.operations = 20;
  options.epoch = 9;
  options.seed = 77;
  workload::EvolutionOutcome outcome = workload::GenerateEvolution(
      **current, a.vkb->dictionary(), options);

  auto refreshed = refresher.CommitAndRefresh(
      *a.vkb, std::move(outcome.changes), "s", "m", 0, sampled);
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  const std::vector<double> via_refresh =
      refreshed->evaluation->context().betweenness_after();

  // Cold build by a fresh engine over the same (already committed)
  // history: same fingerprints, so the same salted sample.
  EvaluationEngine fresh(registry, {.threads = 1});
  auto cold = fresh.Evaluate(*a.vkb, a.vkb->head() - 1, a.vkb->head(),
                             sampled);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_EQ(via_refresh.size(),
            (*cold)->context().betweenness_after().size());
  for (size_t i = 0; i < via_refresh.size(); ++i) {
    EXPECT_EQ(via_refresh[i], (*cold)->context().betweenness_after()[i])
        << "refresh vs cold, index " << i;
  }

  // A regenerated identical history in a second vkb instance shares
  // fingerprints (they hash term *content*, not TermIds), so a third
  // engine reproduces the identical sample — restart-stable sampling.
  // The evolution step is regenerated against B's own dictionary: the
  // generator is deterministic, so the change set is content-identical.
  workload::Scenario b = BaseScenario(63);
  auto b_current = b.vkb->Snapshot(b.vkb->head());
  ASSERT_TRUE(b_current.ok());
  workload::EvolutionOutcome b_outcome = workload::GenerateEvolution(
      **b_current, b.vkb->dictionary(), options);
  ASSERT_TRUE(b.vkb->Commit(std::move(b_outcome.changes), "s", "m").ok());
  auto ha = a.vkb->Handle(a.vkb->head());
  auto hb = b.vkb->Handle(b.vkb->head());
  ASSERT_TRUE(ha.ok() && hb.ok());
  ASSERT_EQ(ha->fingerprint, hb->fingerprint);
  EvaluationEngine other(registry, {.threads = 1});
  auto replay = other.Evaluate(*b.vkb, b.vkb->head() - 1, b.vkb->head(),
                               sampled);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  for (size_t i = 0; i < via_refresh.size(); ++i) {
    EXPECT_EQ(via_refresh[i], (*replay)->context().betweenness_after()[i])
        << "instance replay, index " << i;
  }

  // Distinct versions get distinct effective seeds (the salt works),
  // while salt 0 is the identity that preserves the legacy path.
  auto prev = a.vkb->Handle(a.vkb->head() - 1);
  ASSERT_TRUE(prev.ok());
  EXPECT_NE(measures::SampledSeedFor(sampled, ha->fingerprint),
            measures::SampledSeedFor(sampled, prev->fingerprint));
  EXPECT_EQ(measures::SampledSeedFor(sampled, 0), sampled.seed);
}

}  // namespace
}  // namespace evorec::engine
