#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace evorec {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(InvalidArgumentError("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfRangeError("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(PermissionDeniedError("").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(UnimplementedError("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
  EXPECT_EQ(UnavailableError("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(DeadlineExceededError("").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ResourceExhaustedError("").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, OnlyUnavailableIsTransient) {
  // The circuit breaker and retry policies key off this split: shed
  // (kResourceExhausted) and expired (kDeadlineExceeded) requests are
  // deliberate refusals, not device sickness.
  EXPECT_TRUE(IsTransient(UnavailableError("eio")));
  EXPECT_FALSE(IsTransient(ResourceExhaustedError("shed")));
  EXPECT_FALSE(IsTransient(DeadlineExceededError("late")));
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(NotFoundError("x"), NotFoundError("x"));
  EXPECT_FALSE(NotFoundError("x") == NotFoundError("y"));
  EXPECT_FALSE(NotFoundError("x") == InternalError("x"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kPermissionDenied),
            "PERMISSION_DENIED");
  EXPECT_EQ(StatusCodeName(StatusCode::kDeadlineExceeded),
            "DEADLINE_EXCEEDED");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted),
            "RESOURCE_EXHAUSTED");
}

Status FailsWhenNegative(int x) {
  if (x < 0) return InvalidArgumentError("negative");
  return OkStatus();
}

Status UsesReturnIfError(int x) {
  EVOREC_RETURN_IF_ERROR(FailsWhenNegative(x));
  return OkStatus();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, OkStatusConstructionBecomesInternalError) {
  Result<int> r = OkStatus();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MovesValueOut) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  EVOREC_ASSIGN_OR_RETURN(int half, HalveEven(x));
  EVOREC_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnChains) {
  auto ok = QuarterViaMacro(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  auto bad = QuarterViaMacro(6);  // 6 → 3 → odd
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace evorec
