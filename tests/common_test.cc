#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/hash.h"
#include "common/random.h"
#include "common/statistics.h"
#include "common/strings.h"
#include "common/table_printer.h"

namespace evorec {
namespace {

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool any_diff = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
  EXPECT_EQ(rng.UniformInt(3, 3), 3);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(3);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(RngTest, ZipfPrefersLowRanks) {
  Rng rng(4);
  std::vector<size_t> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[rng.Zipf(10, 1.2)];
  }
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], counts[9]);
  for (size_t c : counts) EXPECT_GT(c, 0u);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(5);
  for (size_t k : {0u, 1u, 5u, 50u, 100u}) {
    auto sample = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(sample.size(), k);
    std::set<size_t> uniq(sample.begin(), sample.end());
    EXPECT_EQ(uniq.size(), k);
    for (size_t v : sample) EXPECT_LT(v, 100u);
  }
  // k > n clamps.
  EXPECT_EQ(rng.SampleWithoutReplacement(3, 10).size(), 3u);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(6);
  std::vector<double> weights = {0.0, 10.0, 0.0, 1.0};
  std::vector<size_t> counts(4, 0);
  for (int i = 0; i < 10000; ++i) {
    const size_t pick = rng.WeightedIndex(weights);
    ASSERT_LT(pick, 4u);
    ++counts[pick];
  }
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_GT(counts[1], counts[3] * 5);
  // All-zero weights signal "no pick".
  std::vector<double> zeros = {0.0, 0.0};
  EXPECT_EQ(rng.WeightedIndex(zeros), zeros.size());
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(7);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

// --------------------------------------------------------- statistics

TEST(StatisticsTest, MeanStdDevMinMax) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_NEAR(StdDev(v), 1.29099, 1e-4);
  EXPECT_DOUBLE_EQ(Min(v), 1);
  EXPECT_DOUBLE_EQ(Max(v), 4);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0}), 0.0);
}

TEST(StatisticsTest, PercentileInterpolates) {
  std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 40);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 25);
}

TEST(StatisticsTest, GiniBounds) {
  EXPECT_DOUBLE_EQ(Gini({5, 5, 5, 5}), 0.0);
  // One person owns everything in a group of 4: Gini = (n-1)/n = 0.75.
  EXPECT_NEAR(Gini({0, 0, 0, 10}), 0.75, 1e-9);
  const double mild = Gini({3, 4, 5, 6});
  EXPECT_GT(mild, 0.0);
  EXPECT_LT(mild, 0.3);
}

TEST(StatisticsTest, JaccardSimilarity) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1}, {}), 0.0);
  // Duplicates collapse.
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 1, 2}, {1, 2, 2}), 1.0);
}

TEST(StatisticsTest, KendallTauAgreementAndReversal) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {2, 4, 6, 8, 10};
  std::vector<double> r = {5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(KendallTau(a, b), 1.0);
  EXPECT_DOUBLE_EQ(KendallTau(a, r), -1.0);
  EXPECT_NEAR(KendallTau(a, {1, 3, 2, 5, 4}), 0.6, 1e-9);
}

TEST(StatisticsTest, SpearmanRho) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  EXPECT_NEAR(SpearmanRho(a, a), 1.0, 1e-9);
  EXPECT_NEAR(SpearmanRho(a, {5, 4, 3, 2, 1}), -1.0, 1e-9);
  EXPECT_DOUBLE_EQ(SpearmanRho(a, {7, 7, 7, 7, 7}), 0.0);
}

TEST(StatisticsTest, NdcgAtK) {
  // Perfect ranking → 1.
  EXPECT_NEAR(NdcgAtK({3, 2, 1, 0}, 4), 1.0, 1e-9);
  // Worst ranking of the same relevance values < 1.
  EXPECT_LT(NdcgAtK({0, 1, 2, 3}, 4), 1.0);
  EXPECT_DOUBLE_EQ(NdcgAtK({}, 5), 0.0);
  EXPECT_DOUBLE_EQ(NdcgAtK({0, 0}, 2), 0.0);
}

// ------------------------------------------------------------ strings

TEST(StringsTest, SplitAndJoin) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrJoin({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(StrJoin({}, "-"), "");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y\t"), "x y");
  EXPECT_EQ(StripWhitespace("\t\n "), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_FALSE(EndsWith("lo", "hello"));
}

TEST(StringsTest, FormatDoubleAndHumanBytes) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1536), "1.5 KiB");
}

TEST(StringsTest, NTriplesEscapeRoundtrip) {
  const std::string nasty = "line1\nline2\t\"quoted\"\\slash\r";
  EXPECT_EQ(UnescapeNTriples(EscapeNTriples(nasty)), nasty);
  EXPECT_EQ(EscapeNTriples("a\"b"), "a\\\"b");
}

// --------------------------------------------------------------- hash

TEST(HashTest, Fnv1aIsStable) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
}

TEST(HashTest, HashCombineOrderSensitive) {
  size_t a = 0, b = 0;
  HashCombine(a, 1);
  HashCombine(a, 2);
  HashCombine(b, 2);
  HashCombine(b, 1);
  EXPECT_NE(a, b);
}

// ------------------------------------------------------ table printer

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", TablePrinter::Cell(1.5, 1)});
  table.AddRow({"b", TablePrinter::Cell(size_t{42})});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TablePrinterTest, HandlesRaggedRows) {
  TablePrinter table({"a"});
  table.AddRow({"x", "extra"});
  table.AddRow({});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("extra"), std::string::npos);
}

}  // namespace
}  // namespace evorec
