// Storage-layer unit tests: the binary I/O primitives, the snapshot
// and commit-log codecs, and — most importantly — corruption
// handling: a truncated file, a flipped byte, or a wrong magic /
// format version must each come back as a clean Status error, never
// UB (the whole file is covered by the ASan preset like every test).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "evorec.h"

namespace evorec {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "evorec_storage_" + name;
}

// ---- binary_io primitives ----

TEST(BinaryIoTest, VarintRoundTrip) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             300,
                             16383,
                             16384,
                             (1ULL << 32) - 1,
                             1ULL << 32,
                             UINT64_MAX};
  for (uint64_t v : values) {
    std::string buffer;
    PutVarint(buffer, v);
    ByteReader reader(buffer);
    uint64_t decoded = 0;
    ASSERT_TRUE(reader.ReadVarint(&decoded)) << v;
    EXPECT_EQ(decoded, v);
    EXPECT_TRUE(reader.empty());
  }
}

TEST(BinaryIoTest, VarintRejectsTruncatedAndOverlong) {
  // Lone continuation byte: truncated.
  ByteReader truncated(std::string_view("\x80", 1));
  uint64_t v = 0;
  EXPECT_FALSE(truncated.ReadVarint(&v));

  // 10 continuation bytes followed by data: > 64 bits.
  std::string overlong(10, '\x80');
  overlong.push_back('\x01');
  ByteReader reader(overlong);
  EXPECT_FALSE(reader.ReadVarint(&v));

  // 10th byte contributing more than one bit overflows u64.
  std::string overflow(9, '\xFF');
  overflow.push_back('\x02');
  ByteReader reader2(overflow);
  EXPECT_FALSE(reader2.ReadVarint(&v));
}

TEST(BinaryIoTest, ZigZagMapsSmallMagnitudesToSmallCodes) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  const int64_t values[] = {0, -1, 1, -64, 63, INT64_MIN, INT64_MAX};
  for (int64_t v : values) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
    std::string buffer;
    PutZigZag(buffer, v);
    ByteReader reader(buffer);
    int64_t decoded = 0;
    ASSERT_TRUE(reader.ReadZigZag(&decoded));
    EXPECT_EQ(decoded, v);
  }
}

TEST(BinaryIoTest, FixedWidthLittleEndian) {
  std::string buffer;
  PutFixed32(buffer, 0x04030201u);
  PutFixed64(buffer, 0x0807060504030201ull);
  ASSERT_EQ(buffer.size(), 12u);
  EXPECT_EQ(buffer[0], '\x01');  // least-significant byte first
  EXPECT_EQ(buffer[4], '\x01');
  ByteReader reader(buffer);
  uint32_t f32 = 0;
  uint64_t f64 = 0;
  ASSERT_TRUE(reader.ReadFixed32(&f32));
  ASSERT_TRUE(reader.ReadFixed64(&f64));
  EXPECT_EQ(f32, 0x04030201u);
  EXPECT_EQ(f64, 0x0807060504030201ull);
}

TEST(BinaryIoTest, Crc32MatchesKnownVectorAndChains) {
  // The canonical CRC-32/ISO-HDLC check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  // Incremental chaining equals one-shot over the concatenation.
  EXPECT_EQ(Crc32("56789", Crc32("1234")), Crc32("123456789"));
}

TEST(BinaryIoTest, ReaderNeverReadsPastEnd) {
  ByteReader reader(std::string_view("ab"));
  std::string_view bytes;
  uint32_t f32 = 0;
  EXPECT_FALSE(reader.ReadFixed32(&f32));
  EXPECT_FALSE(reader.ReadBytes(3, &bytes));
  EXPECT_TRUE(reader.ReadBytes(2, &bytes));
  EXPECT_TRUE(reader.empty());
  EXPECT_FALSE(reader.Skip(1));
}

TEST(BinaryIoTest, LengthPrefixRejectsLengthBeyondBuffer) {
  std::string buffer;
  PutVarint(buffer, 1000);  // claims 1000 bytes, provides none
  ByteReader reader(buffer);
  std::string_view out;
  EXPECT_FALSE(reader.ReadLengthPrefixed(&out));
}

TEST(BinaryIoTest, FileRoundTripAndMissingFile) {
  const std::string path = TempPath("file_roundtrip.bin");
  const std::string payload = std::string("bytes\0with\0nuls", 15);
  ASSERT_TRUE(WriteFileAtomic(path, payload, /*sync=*/true).ok());
  auto read_back = ReadFileToString(path);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(*read_back, payload);
  std::remove(path.c_str());
  EXPECT_EQ(ReadFileToString(path).status().code(), StatusCode::kNotFound);
}

// ---- snapshot codec ----

rdf::KnowledgeBase MakeSampleKb() {
  rdf::KnowledgeBase kb;
  kb.DeclareClass("http://ex/Person");
  kb.DeclareClass("http://ex/Student");
  kb.AddIriTriple("http://ex/Student", rdf::iri::kRdfsSubClassOf,
                  "http://ex/Person");
  kb.AddIriTriple("http://ex/alice", rdf::iri::kRdfType, "http://ex/Person");
  kb.AddLiteralTriple("http://ex/alice", rdf::iri::kRdfsLabel, "Alice");
  kb.AddLiteralTriple("http://ex/alice", "http://ex/age", "30",
                      rdf::iri::kXsdInteger);
  const rdf::TermId tagged = kb.dictionary().Intern(
      rdf::Term::Literal("hello", "", "en"));
  const rdf::TermId blank = kb.dictionary().Intern(rdf::Term::Blank("b0"));
  kb.store().Add(rdf::Triple(blank, kb.vocabulary().rdfs_label, tagged));
  kb.store().Compact();
  return kb;
}

TEST(SnapshotTest, EncodeDecodeRoundTrip) {
  rdf::KnowledgeBase kb = MakeSampleKb();
  const std::string bytes =
      storage::EncodeSnapshot(kb.store(), kb.dictionary(), 7, 0xFEEDBEEFull);
  EXPECT_TRUE(storage::LooksLikeSnapshot(bytes));

  auto decoded = storage::DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->info.version_id, 7u);
  EXPECT_EQ(decoded->info.fingerprint, 0xFEEDBEEFull);
  EXPECT_EQ(decoded->info.term_count, kb.dictionary().size());
  EXPECT_EQ(decoded->info.triple_count, kb.store().size());

  // Identical term table, id for id.
  ASSERT_EQ(decoded->dictionary->size(), kb.dictionary().size());
  for (rdf::TermId id = 0; id < kb.dictionary().size(); ++id) {
    EXPECT_TRUE(decoded->dictionary->term(id) == kb.dictionary().term(id))
        << "term " << id;
  }
  // Identical triples, and the decoded store serves scans (the lazy
  // secondary indexes build on demand).
  EXPECT_EQ(decoded->store.triples(), kb.store().triples());
  const rdf::TermId person = kb.dictionary().Find(
      rdf::Term::Iri("http://ex/Person"));
  const rdf::TriplePattern by_object(rdf::kAnyTerm, rdf::kAnyTerm, person);
  EXPECT_EQ(decoded->store.Match(by_object), kb.store().Match(by_object));
}

TEST(SnapshotTest, EmptyStoreRoundTrips) {
  rdf::KnowledgeBase kb;  // dictionary holds just the vocabulary
  const std::string bytes =
      storage::EncodeSnapshot(kb.store(), kb.dictionary());
  auto decoded = storage::DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->info.triple_count, 0u);
  EXPECT_TRUE(decoded->store.empty());
  EXPECT_EQ(decoded->dictionary->size(), kb.dictionary().size());
}

TEST(SnapshotTest, SaveLoadFileRoundTrip) {
  rdf::KnowledgeBase kb = MakeSampleKb();
  const std::string path = TempPath("snapshot.evsnap");
  storage::SnapshotOptions options;
  options.sync = true;
  ASSERT_TRUE(storage::SaveSnapshot(path, kb.store(), kb.dictionary(), 3,
                                    42, options)
                  .ok());
  auto loaded = storage::LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->info.version_id, 3u);
  EXPECT_EQ(loaded->info.fingerprint, 42u);
  EXPECT_EQ(loaded->store.triples(), kb.store().triples());
  std::remove(path.c_str());
  EXPECT_FALSE(storage::LoadSnapshot(path).ok());
}

TEST(SnapshotTest, PeekReadsHeaderOnly) {
  rdf::KnowledgeBase kb = MakeSampleKb();
  const std::string bytes =
      storage::EncodeSnapshot(kb.store(), kb.dictionary(), 9, 1234);
  auto info = storage::PeekSnapshotInfo(bytes);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version_id, 9u);
  EXPECT_EQ(info->fingerprint, 1234u);
  EXPECT_EQ(info->triple_count, kb.store().size());
  EXPECT_FALSE(storage::PeekSnapshotInfo("not a snapshot at all").ok());
  EXPECT_FALSE(storage::LooksLikeSnapshot("<http://x> <http://y> ..."));
}

// ---- snapshot corruption: clean errors, never UB ----

TEST(SnapshotCorruptionTest, EveryTruncationFailsCleanly) {
  rdf::KnowledgeBase kb = MakeSampleKb();
  const std::string bytes =
      storage::EncodeSnapshot(kb.store(), kb.dictionary(), 1, 99);
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto decoded = storage::DecodeSnapshot(bytes.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
}

TEST(SnapshotCorruptionTest, EveryFlippedByteFailsCleanly) {
  rdf::KnowledgeBase kb = MakeSampleKb();
  std::string bytes =
      storage::EncodeSnapshot(kb.store(), kb.dictionary(), 1, 99);
  // Every byte is under a CRC (header or section) or is framing whose
  // damage a checksum or structural check catches.
  for (size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<char>(bytes[i] ^ 0x40);
    auto decoded = storage::DecodeSnapshot(bytes);
    EXPECT_FALSE(decoded.ok()) << "flip at byte " << i << " decoded";
    bytes[i] = static_cast<char>(bytes[i] ^ 0x40);
  }
}

TEST(SnapshotCorruptionTest, WrongMagicAndVersionAreExplicit) {
  rdf::KnowledgeBase kb = MakeSampleKb();
  std::string bytes = storage::EncodeSnapshot(kb.store(), kb.dictionary());

  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  auto no_magic = storage::DecodeSnapshot(wrong_magic);
  ASSERT_FALSE(no_magic.ok());
  EXPECT_NE(no_magic.status().message().find("magic"), std::string::npos);

  // A future format version must be refused even with a valid CRC —
  // rewrite the version field and recompute the header checksum.
  std::string future = bytes;
  future[8] = '\x02';
  std::string fixed_header = future.substr(0, 48);
  future[48] = static_cast<char>(Crc32(fixed_header) & 0xFF);
  future[49] = static_cast<char>((Crc32(fixed_header) >> 8) & 0xFF);
  future[50] = static_cast<char>((Crc32(fixed_header) >> 16) & 0xFF);
  future[51] = static_cast<char>((Crc32(fixed_header) >> 24) & 0xFF);
  auto versioned = storage::DecodeSnapshot(future);
  ASSERT_FALSE(versioned.ok());
  EXPECT_NE(versioned.status().message().find("format version"),
            std::string::npos);
}

// ---- commit log ----

storage::DeltaRecord MakeRecord(uint32_t version_id) {
  storage::DeltaRecord record;
  record.version_id = version_id;
  record.timestamp = 1000 + version_id;
  record.author = "tester";
  record.message = "commit " + std::to_string(version_id);
  record.fingerprint = 0xAB00ull + version_id;
  record.first_term_id = 11;
  record.new_terms.push_back(rdf::Term::Iri("http://ex/fresh" +
                                            std::to_string(version_id)));
  // Deliberately unsorted: log records must preserve caller order.
  record.additions = {{9, 2, 5}, {3, 7, 1}, {3, 2, 8}};
  record.removals = {{12, 1, 0}};
  return record;
}

TEST(CommitLogTest, AppendReadRoundTripPreservesOrder) {
  const std::string path = TempPath("log_roundtrip.evlog");
  std::remove(path.c_str());
  {
    auto log = storage::CommitLog::Open(path);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    for (uint32_t v = 1; v <= 3; ++v) {
      ASSERT_TRUE(log->Append(MakeRecord(v)).ok());
    }
    EXPECT_EQ(log->records_appended(), 3u);
    ASSERT_TRUE(log->Sync().ok());
    ASSERT_TRUE(log->Close().ok());
    EXPECT_FALSE(log->Append(MakeRecord(4)).ok());  // closed
  }
  auto records = storage::ReadLog(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 3u);
  for (uint32_t v = 1; v <= 3; ++v) {
    const storage::DeltaRecord& r = (*records)[v - 1];
    const storage::DeltaRecord expected = MakeRecord(v);
    EXPECT_EQ(r.version_id, expected.version_id);
    EXPECT_EQ(r.timestamp, expected.timestamp);
    EXPECT_EQ(r.author, expected.author);
    EXPECT_EQ(r.message, expected.message);
    EXPECT_EQ(r.fingerprint, expected.fingerprint);
    EXPECT_EQ(r.first_term_id, expected.first_term_id);
    ASSERT_EQ(r.new_terms.size(), 1u);
    EXPECT_TRUE(r.new_terms[0] == expected.new_terms[0]);
    EXPECT_EQ(r.additions, expected.additions);  // original order
    EXPECT_EQ(r.removals, expected.removals);
  }
  std::remove(path.c_str());
}

TEST(CommitLogTest, ReopenAppendsAfterExistingRecords) {
  const std::string path = TempPath("log_reopen.evlog");
  std::remove(path.c_str());
  {
    auto log = storage::CommitLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append(MakeRecord(1)).ok());
  }
  {
    storage::LogOptions options;
    options.sync_on_append = true;  // exercise the fsync path
    auto log = storage::CommitLog::Open(path, options);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    ASSERT_TRUE(log->Append(MakeRecord(2)).ok());
  }
  auto records = storage::ReadLog(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].version_id, 1u);
  EXPECT_EQ((*records)[1].version_id, 2u);
  std::remove(path.c_str());
}

TEST(CommitLogTest, OpenRejectsForeignFile) {
  const std::string path = TempPath("log_foreign.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "definitely not a commit log").ok());
  auto log = storage::CommitLog::Open(path);
  EXPECT_FALSE(log.ok());
  std::remove(path.c_str());
}

// ---- commit-log corruption ----

std::string EncodeLogImage(const std::string& tag,
                           const std::vector<storage::DeltaRecord>& records) {
  const std::string path = TempPath("log_image_" + tag + ".evlog");
  std::remove(path.c_str());
  {
    auto log = storage::CommitLog::Open(path);
    EXPECT_TRUE(log.ok());
    for (const storage::DeltaRecord& r : records) {
      EXPECT_TRUE(log->Append(r).ok());
    }
  }
  auto bytes = ReadFileToString(path);
  EXPECT_TRUE(bytes.ok());
  std::remove(path.c_str());
  return *bytes;
}

size_t CountRecords(std::string_view bytes,
                    const storage::ReplayOptions& options, Status* status) {
  size_t count = 0;
  *status = storage::ReplayLog(
      bytes,
      [&count](storage::DeltaRecord&&) {
        ++count;
        return OkStatus();
      },
      options);
  return count;
}

TEST(CommitLogCorruptionTest, TruncationIsTornTailOrError) {
  const std::string bytes =
      EncodeLogImage("trunc2", {MakeRecord(1), MakeRecord(2)});
  const std::string one_record = EncodeLogImage("trunc1", {MakeRecord(1)});
  for (size_t len = 0; len < bytes.size(); ++len) {
    const std::string_view prefix(bytes.data(), len);
    Status strict;
    const size_t strict_count = CountRecords(prefix, {}, &strict);
    // Strict mode: only clean cuts at a record boundary parse.
    if (len == one_record.size()) {
      EXPECT_TRUE(strict.ok()) << len;
      EXPECT_EQ(strict_count, 1u);
    } else if (len == 24) {  // header-only file: empty log, valid
      EXPECT_TRUE(strict.ok());
      EXPECT_EQ(strict_count, 0u);
    } else {
      EXPECT_FALSE(strict.ok()) << "strict replay of " << len
                                << "-byte prefix passed";
    }
    // Torn-tail mode: anything at or past the header recovers the
    // records before the tear.
    storage::ReplayOptions tolerant;
    tolerant.allow_torn_tail = true;
    Status torn;
    const size_t torn_count = CountRecords(prefix, tolerant, &torn);
    if (len < 24) {
      EXPECT_FALSE(torn.ok());  // even WAL recovery needs the header
    } else {
      EXPECT_TRUE(torn.ok()) << len;
      EXPECT_EQ(torn_count, len >= one_record.size() ? 1u : 0u) << len;
    }
  }
}

TEST(CommitLogCorruptionTest, EveryFlippedByteFailsStrictReplay) {
  std::string bytes = EncodeLogImage("flip", {MakeRecord(1), MakeRecord(2)});
  for (size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<char>(bytes[i] ^ 0x40);
    Status strict;
    (void)CountRecords(bytes, {}, &strict);
    EXPECT_FALSE(strict.ok()) << "flip at byte " << i << " passed";
    bytes[i] = static_cast<char>(bytes[i] ^ 0x40);
  }
}

TEST(CommitLogCorruptionTest, TornTailModeNeverDropsMiddleRecords) {
  std::string bytes = EncodeLogImage("flip_torn", {MakeRecord(1),
                                                   MakeRecord(2)});
  const size_t last_record_start =
      bytes.size() - storage::EncodeDeltaRecord(MakeRecord(2)).size();
  storage::ReplayOptions tolerant;
  tolerant.allow_torn_tail = true;
  // Record 1 occupies [24, last_record_start); its length field at
  // [28, 36) is the one region where a flip can mimic a tear (a
  // longer claimed frame "runs past EOF" exactly like a truncated
  // append would) — inherent to length-prefixed framing.
  const size_t rec1_len_field = 24 + 4;
  for (size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<char>(bytes[i] ^ 0x40);
    Status status;
    const size_t count = CountRecords(bytes, tolerant, &status);
    const bool ambiguous =
        i >= rec1_len_field && i < rec1_len_field + 8;
    if (i < last_record_start && !ambiguous) {
      // Header, record-1 payload, or record-1 marker: damage here is
      // corruption, never a tear — tolerant replay must not silently
      // truncate history.
      EXPECT_FALSE(status.ok()) << "flip at byte " << i << " passed";
    } else if (status.ok()) {
      // Damage read as a torn tail: only complete leading records
      // survive, never a partial or reordered set.
      EXPECT_LE(count, i < last_record_start ? 0u : 1u)
          << "flip at byte " << i;
    }
    bytes[i] = static_cast<char>(bytes[i] ^ 0x40);
  }
}

TEST(CommitLogTest, OpenTruncatesTornTailBeforeAppending) {
  const std::string path = TempPath("log_tear_repair.evlog");
  std::remove(path.c_str());
  {
    auto log = storage::CommitLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append(MakeRecord(1)).ok());
    ASSERT_TRUE(log->Append(MakeRecord(2)).ok());
  }
  // Crash mid-append: half of record 2 is on disk.
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  const size_t record2_size = storage::EncodeDeltaRecord(MakeRecord(2)).size();
  ASSERT_TRUE(WriteFileAtomic(
                  path, bytes->substr(0, bytes->size() - record2_size / 2))
                  .ok());
  // Reopen: the tear is truncated away, and the next append lands
  // right after record 1 — fully replayable even in strict mode.
  {
    auto log = storage::CommitLog::Open(path);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    ASSERT_TRUE(log->Append(MakeRecord(3)).ok());
  }
  auto records = storage::ReadLog(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].version_id, 1u);
  EXPECT_EQ((*records)[1].version_id, 3u);
  std::remove(path.c_str());
}

TEST(CommitLogTest, OpenRefusesMidLogCorruption) {
  const std::string path = TempPath("log_corrupt_refuse.evlog");
  std::remove(path.c_str());
  {
    auto log = storage::CommitLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append(MakeRecord(1)).ok());
    ASSERT_TRUE(log->Append(MakeRecord(2)).ok());
  }
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = *bytes;
  // Flip a byte inside record 1's *payload* (after the 24-byte file
  // header and 12 bytes of record framing): the frame stays intact,
  // the CRC fails, and record 2's bytes follow — unambiguous mid-log
  // corruption, not a tear.
  corrupted[40] = static_cast<char>(corrupted[40] ^ 0x40);
  ASSERT_TRUE(WriteFileAtomic(path, corrupted).ok());
  auto log = storage::CommitLog::Open(path);
  ASSERT_FALSE(log.ok());
  EXPECT_EQ(log.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace evorec
