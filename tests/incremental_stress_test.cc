// Concurrent incremental-refresh stress (the TSan CI target): one
// committer thread drives a live commit stream through
// RecommendationService::Commit while server threads keep serving
// recommendations over the advancing head — the serving-loop write
// path racing the read path through one shared engine.
//
// The change sets are pre-generated on a scratch KB sharing the
// serving KB's dictionary, so every term is interned before the
// threads start and the dictionary is strictly read-only during the
// race — commits and serves only contend on the engine's own locks,
// which is exactly the surface under test.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/recommendation_service.h"
#include "measures/registry.h"
#include "profile/profile.h"
#include "version/versioned_kb.h"
#include "workload/evolution_generator.h"
#include "workload/scenarios.h"

namespace evorec::engine {
namespace {

TEST(IncrementalStressTest, CommitterAndServersShareOneEngine) {
  constexpr size_t kCommits = 10;
  constexpr size_t kServers = 4;
  constexpr size_t kServesPerThread = 24;

  workload::ScenarioScale scale;
  scale.classes = 30;
  scale.properties = 10;
  scale.instances = 150;
  scale.edges = 300;
  scale.versions = 1;
  scale.operations = 50;
  workload::Scenario scenario = workload::MakeDbpediaLike(47, scale);
  version::VersionedKnowledgeBase& vkb = *scenario.vkb;

  // Pre-generate the stream on a scratch KB seeded with the serving
  // head. Copying a KnowledgeBase shares its dictionary, so the fresh
  // IRIs of every future commit are interned into the SERVING
  // dictionary here, before any thread starts.
  auto head_snapshot = vkb.Snapshot(vkb.head());
  ASSERT_TRUE(head_snapshot.ok());
  version::VersionedKnowledgeBase scratch(
      version::ArchivePolicy::kFullMaterialization,
      rdf::KnowledgeBase(**head_snapshot));
  ASSERT_EQ(scratch.shared_dictionary().get(), vkb.shared_dictionary().get());
  std::vector<version::ChangeSet> stream;
  stream.reserve(kCommits);
  for (size_t step = 0; step < kCommits; ++step) {
    auto current = scratch.Snapshot(scratch.head());
    ASSERT_TRUE(current.ok());
    workload::EvolutionOptions options;
    options.operations = 15;
    if (step % 2 == 1) options.mix = workload::ChangeMix::InstanceChurn();
    options.epoch = 2000 + step;
    options.seed = 640 + step;
    workload::EvolutionOutcome outcome = workload::GenerateEvolution(
        **current, scratch.dictionary(), options);
    stream.push_back(outcome.changes);
    ASSERT_TRUE(
        scratch.Commit(std::move(outcome.changes), "gen", "scratch").ok());
  }

  measures::MeasureRegistry registry = measures::DefaultRegistry();
  ServiceOptions service_options;
  service_options.engine.threads = 2;
  RecommendationService service(registry, service_options);
  ASSERT_TRUE(service.WarmStart(vkb, vkb.head() - 1, vkb.head()).ok());

  std::atomic<version::VersionId> published{vkb.head()};
  std::atomic<int> failures{0};

  std::thread committer([&] {
    for (version::ChangeSet& changes : stream) {
      auto committed =
          service.Commit(vkb, std::move(changes), "committer", "stress");
      if (!committed.ok()) {
        ++failures;
        return;
      }
      published.store(*committed, std::memory_order_release);
    }
  });

  std::vector<std::thread> servers;
  servers.reserve(kServers);
  for (size_t s = 0; s < kServers; ++s) {
    servers.emplace_back([&, s] {
      profile::HumanProfile solo = scenario.end_user;
      profile::HumanProfile batch_a("stress-user-a-" + std::to_string(s));
      profile::HumanProfile batch_b("stress-user-b-" + std::to_string(s));
      for (size_t i = 0; i < kServesPerThread; ++i) {
        const version::VersionId head =
            published.load(std::memory_order_acquire);
        if (i % 3 == 0) {
          std::vector<profile::HumanProfile*> profiles{&batch_a, &batch_b};
          auto lists = service.RecommendBatch(vkb, head - 1, head, profiles);
          if (!lists.ok() || lists->size() != 2) ++failures;
        } else {
          auto list = service.Recommend(vkb, head - 1, head, solo);
          if (!list.ok()) ++failures;
        }
      }
    });
  }

  committer.join();
  for (std::thread& server : servers) server.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(published.load(), vkb.head());
  EXPECT_EQ(vkb.head(), 1 + kCommits);
  // Every commit refreshed incrementally through the shared engine.
  EXPECT_EQ(service.engine_stats().contexts_refreshed, kCommits);
  EXPECT_EQ(service.engine().incremental_stats().refreshes, kCommits);
}

}  // namespace
}  // namespace evorec::engine
