#include "profile/profile.h"

#include <gtest/gtest.h>

#include "profile/group.h"

namespace evorec::profile {
namespace {

TEST(ProfileTest, InterestLifecycle) {
  HumanProfile prof("ann");
  EXPECT_EQ(prof.id(), "ann");
  EXPECT_DOUBLE_EQ(prof.InterestIn(1), 0.0);
  prof.SetInterest(1, 0.8);
  prof.SetInterest(2, 0.4);
  EXPECT_DOUBLE_EQ(prof.InterestIn(1), 0.8);
  EXPECT_DOUBLE_EQ(prof.TotalInterest(), 1.2);
  // Zero weight erases.
  prof.SetInterest(1, 0.0);
  EXPECT_DOUBLE_EQ(prof.InterestIn(1), 0.0);
  EXPECT_EQ(prof.interests().size(), 1u);
}

TEST(ProfileTest, CategoryAffinityDefaultsToOne) {
  HumanProfile prof("u");
  EXPECT_DOUBLE_EQ(
      prof.CategoryAffinity(measures::MeasureCategory::kStructural), 1.0);
  prof.SetCategoryAffinity(measures::MeasureCategory::kStructural, 0.2);
  EXPECT_DOUBLE_EQ(
      prof.CategoryAffinity(measures::MeasureCategory::kStructural), 0.2);
  EXPECT_DOUBLE_EQ(
      prof.CategoryAffinity(measures::MeasureCategory::kSemantic), 1.0);
}

TEST(ProfileTest, SeenHistoryAndNovelty) {
  HumanProfile prof("u");
  EXPECT_DOUBLE_EQ(prof.NoveltyOf({1, 2, 3}), 1.0);
  prof.RecordSeen({1, 2});
  EXPECT_TRUE(prof.HasSeen(1));
  EXPECT_FALSE(prof.HasSeen(3));
  EXPECT_EQ(prof.seen_count(), 2u);
  EXPECT_NEAR(prof.NoveltyOf({1, 2, 3}), 1.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(prof.NoveltyOf({}), 1.0);
  // Recording again is idempotent.
  prof.RecordSeen({1});
  EXPECT_EQ(prof.seen_count(), 2u);
}

TEST(ProfileTest, InterestSimilarity) {
  HumanProfile a("a"), b("b"), c("c");
  a.SetInterest(1, 1.0);
  a.SetInterest(2, 1.0);
  b.SetInterest(1, 1.0);
  b.SetInterest(2, 1.0);
  c.SetInterest(3, 1.0);
  EXPECT_NEAR(InterestSimilarity(a, b), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(InterestSimilarity(a, c), 0.0);
  // Empty profiles have zero similarity.
  HumanProfile empty("e");
  EXPECT_DOUBLE_EQ(InterestSimilarity(a, empty), 0.0);
  // Scale-invariance of cosine.
  HumanProfile scaled("s");
  scaled.SetInterest(1, 0.1);
  scaled.SetInterest(2, 0.1);
  EXPECT_NEAR(InterestSimilarity(a, scaled), 1.0, 1e-9);
}

TEST(GroupTest, MembershipAndCohesion) {
  Group group("team");
  EXPECT_TRUE(group.empty());
  EXPECT_DOUBLE_EQ(group.Cohesion(), 1.0);  // degenerate

  HumanProfile a("a"), b("b");
  a.SetInterest(1, 1.0);
  b.SetInterest(1, 1.0);
  group.AddMember(a);
  group.AddMember(b);
  EXPECT_EQ(group.size(), 2u);
  EXPECT_NEAR(group.Cohesion(), 1.0, 1e-9);

  HumanProfile c("c");
  c.SetInterest(99, 1.0);
  group.AddMember(c);
  EXPECT_LT(group.Cohesion(), 1.0);
}

TEST(GroupTest, RecordSeenReachesAllMembers) {
  Group group("team");
  group.AddMember(HumanProfile("a"));
  group.AddMember(HumanProfile("b"));
  group.RecordSeen({7, 8});
  for (const HumanProfile& member : group.members()) {
    EXPECT_TRUE(member.HasSeen(7));
    EXPECT_TRUE(member.HasSeen(8));
  }
}

}  // namespace
}  // namespace evorec::profile
