#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/betweenness.h"
#include "graph/bridging.h"
#include "graph/graph_metrics.h"
#include "graph/schema_graph.h"
#include "rdf/knowledge_base.h"

namespace evorec::graph {
namespace {

Graph Path(size_t n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph::FromEdges(n, std::move(edges));
}

Graph Star(size_t leaves) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 1; i <= leaves; ++i) edges.emplace_back(0, i);
  return Graph::FromEdges(leaves + 1, std::move(edges));
}

TEST(GraphTest, FromEdgesNormalises) {
  Graph g = Graph::FromEdges(
      4, {{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}, {9, 1}});
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 2u);  // 0-1 and 1-2; self-loop/dup/oob dropped
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(3), 0u);
  const auto n1 = g.Neighbors(1);
  EXPECT_EQ(std::vector<NodeId>(n1.begin(), n1.end()),
            (std::vector<NodeId>{0, 2}));
}

TEST(BetweennessTest, PathGraphKnownValues) {
  // Path 0-1-2-3-4: betweenness of node i counts pairs routed through
  // it: 0,3,4,3,0.
  const auto b = BetweennessExact(Path(5));
  ASSERT_EQ(b.size(), 5u);
  EXPECT_DOUBLE_EQ(b[0], 0.0);
  EXPECT_DOUBLE_EQ(b[1], 3.0);
  EXPECT_DOUBLE_EQ(b[2], 4.0);
  EXPECT_DOUBLE_EQ(b[3], 3.0);
  EXPECT_DOUBLE_EQ(b[4], 0.0);
}

TEST(BetweennessTest, StarCenterCarriesAllPairs) {
  const auto b = BetweennessExact(Star(4));
  // Center routes all C(4,2)=6 leaf pairs.
  EXPECT_DOUBLE_EQ(b[0], 6.0);
  for (size_t i = 1; i < b.size(); ++i) EXPECT_DOUBLE_EQ(b[i], 0.0);
}

TEST(BetweennessTest, CompleteGraphHasZeroBetweenness) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i < 5; ++i) {
    for (NodeId j = i + 1; j < 5; ++j) edges.emplace_back(i, j);
  }
  const auto b = BetweennessExact(Graph::FromEdges(5, std::move(edges)));
  for (double v : b) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(BetweennessTest, DisconnectedComponentsIndependent) {
  // Two disjoint paths 0-1-2 and 3-4-5.
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  const auto b = BetweennessExact(g);
  EXPECT_DOUBLE_EQ(b[1], 1.0);
  EXPECT_DOUBLE_EQ(b[4], 1.0);
  EXPECT_DOUBLE_EQ(b[0], 0.0);
}

TEST(BetweennessTest, SampledWithAllPivotsEqualsExact) {
  Graph g = Path(8);
  Rng rng(5);
  const auto exact = BetweennessExact(g);
  const auto sampled = BetweennessSampled(g, 8, rng);
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(sampled[i], exact[i], 1e-9);
  }
}

TEST(BetweennessTest, SampledApproximatesExactRanking) {
  // A barbell: two cliques joined by a bridge node.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i < 5; ++i) {
    for (NodeId j = i + 1; j < 5; ++j) edges.emplace_back(i, j);
  }
  for (NodeId i = 6; i < 11; ++i) {
    for (NodeId j = i + 1; j < 11; ++j) edges.emplace_back(i, j);
  }
  edges.emplace_back(4, 5);
  edges.emplace_back(5, 6);
  Graph g = Graph::FromEdges(11, std::move(edges));
  Rng rng(7);
  const auto sampled = BetweennessSampled(g, 6, rng);
  // The bridge node 5 must dominate the clique cores even under
  // sampling. (The gate node 4 is excluded: its exact betweenness, 24,
  // is nearly tied with the bridge's 25, so sampling noise can
  // legitimately flip that pair.)
  const double max_core =
      *std::max_element(sampled.begin(), sampled.begin() + 4);
  EXPECT_GT(sampled[5], max_core);
}

TEST(BetweennessTest, NormalizationBoundsScores) {
  auto normalized = NormalizeBetweenness(BetweennessExact(Star(6)));
  for (double v : normalized) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // Star center routes every pair → exactly 1 after normalisation.
  EXPECT_DOUBLE_EQ(normalized[0], 1.0);
  // Tiny graphs normalise to zero.
  const auto tiny = NormalizeBetweenness({5.0, 5.0});
  EXPECT_DOUBLE_EQ(tiny[0], 0.0);
}

TEST(BridgingTest, CoefficientFavorsNodesBetweenDenseRegions) {
  // Path 0-1-2: middle node has degree 2, ends degree 1.
  // BC(1) = (1/2) / (1/1 + 1/1) = 0.25; BC(0) = 1 / (1/2) = 2.
  const auto coeff = BridgingCoefficient(Path(3));
  EXPECT_DOUBLE_EQ(coeff[1], 0.25);
  EXPECT_DOUBLE_EQ(coeff[0], 2.0);
  EXPECT_DOUBLE_EQ(coeff[2], 2.0);
}

TEST(BridgingTest, IsolatedNodesGetZero) {
  Graph g = Graph::FromEdges(3, {{0, 1}});
  const auto coeff = BridgingCoefficient(g);
  EXPECT_DOUBLE_EQ(coeff[2], 0.0);
}

TEST(BridgingTest, CentralityIsProductWithBetweenness) {
  Graph g = Path(5);
  const auto betweenness = BetweennessExact(g);
  const auto coeff = BridgingCoefficient(g);
  const auto bridging = BridgingCentrality(g, betweenness);
  for (size_t i = 0; i < bridging.size(); ++i) {
    EXPECT_DOUBLE_EQ(bridging[i], coeff[i] * betweenness[i]);
  }
}

TEST(GraphMetricsTest, ConnectedComponents) {
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {3, 4}});
  const auto labels = ConnectedComponents(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_NE(labels[5], labels[0]);
  EXPECT_NE(labels[5], labels[3]);
  EXPECT_EQ(ComponentCount(g), 3u);
}

TEST(GraphMetricsTest, ClusteringCoefficient) {
  // Triangle + pendant: nodes 0,1,2 form a triangle, 3 hangs off 0.
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  const auto cc = LocalClusteringCoefficient(g);
  EXPECT_DOUBLE_EQ(cc[1], 1.0);
  EXPECT_DOUBLE_EQ(cc[2], 1.0);
  EXPECT_NEAR(cc[0], 1.0 / 3.0, 1e-9);  // one triangle of three pairs
  EXPECT_DOUBLE_EQ(cc[3], 0.0);
}

TEST(SchemaGraphTest, ProjectsClassesAndAlignsIndexes) {
  rdf::KnowledgeBase kb;
  const rdf::TermId a = kb.DeclareClass("http://x/A");
  const rdf::TermId b = kb.DeclareClass("http://x/B");
  const rdf::TermId c = kb.DeclareClass("http://x/C");
  kb.AddIriTriple("http://x/B",
                  "http://www.w3.org/2000/01/rdf-schema#subClassOf",
                  "http://x/A");
  kb.DeclareProperty("http://x/p", "http://x/A", "http://x/C");
  const schema::SchemaView view = schema::SchemaView::Build(kb);
  std::vector<rdf::TermId> universe = {a, b, c};
  std::sort(universe.begin(), universe.end());

  const SchemaGraph sg = SchemaGraph::Build(view, universe);
  EXPECT_EQ(sg.graph().node_count(), 3u);
  // Edges: A-B (subsumption) and A-C (property).
  EXPECT_EQ(sg.graph().edge_count(), 2u);
  const NodeId na = sg.NodeOf(a);
  ASSERT_NE(na, UINT32_MAX);
  EXPECT_EQ(sg.ClassOf(na), a);
  EXPECT_EQ(sg.NodeOf(999), UINT32_MAX);
}

TEST(SchemaGraphTest, UniverseMayExceedViewClasses) {
  rdf::KnowledgeBase kb;
  const rdf::TermId a = kb.DeclareClass("http://x/A");
  const schema::SchemaView view = schema::SchemaView::Build(kb);
  // Universe contains a class unknown to this version.
  std::vector<rdf::TermId> universe = {a, a + 1000};
  std::sort(universe.begin(), universe.end());
  const SchemaGraph sg = SchemaGraph::Build(view, universe);
  EXPECT_EQ(sg.graph().node_count(), 2u);
  EXPECT_EQ(sg.graph().Degree(sg.NodeOf(a + 1000)), 0u);
}

}  // namespace
}  // namespace evorec::graph
