// Crash-point torture harness (the headline artifact of the
// robustness work): one deterministic multi-commit workload —
// checkpoint saves interleaved with WAL-synced commits — is replayed
// once per possible crash point k, cutting the power at the k-th
// mutating storage operation, rebooting, and running self-healing
// recovery. After every single cut the recovered history must be a
// prefix of the scripted one with its fingerprint chain intact, and
// every commit whose fsync was acknowledged must have survived.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "evorec.h"

namespace evorec {
namespace {

using storage::FaultInjectionEnv;
using storage::FaultPlan;

constexpr uint64_t kSeed = 20260807;
constexpr uint32_t kCommits = 6;
constexpr size_t kCheckpointEvery = 2;
constexpr size_t kKeep = 2;
constexpr char kCheckpointDir[] = "state/checkpoints";
constexpr char kLogPath[] = "state/wal.evlog";

rdf::KnowledgeBase MakeBase(uint64_t seed) {
  workload::SchemaGenOptions schema_options;
  schema_options.class_count = 16;
  schema_options.seed = seed;
  workload::GeneratedSchema generated = workload::GenerateSchema(schema_options);
  workload::InstanceGenOptions instance_options;
  instance_options.instance_count = 60;
  instance_options.edge_count = 90;
  instance_options.seed = seed + 1;
  workload::PopulateInstances(generated, instance_options);
  return std::move(generated.kb);
}

/// Everything one scripted run produced before it stopped (cleanly or
/// at a crash).
struct WorkloadTrace {
  /// fingerprints[v] — version v's chained fingerprint, v = 0..N.
  std::vector<uint64_t> fingerprints;
  /// Version ids whose Commit returned OK: with sync_on_append this is
  /// the fsync-acknowledged set, the commits durability promises.
  std::vector<version::VersionId> acked;
  bool completed = false;
};

/// The scripted workload: snapshot v0 as the initial checkpoint, open
/// a WAL with fsync-per-commit, then kCommits evolution commits with a
/// checkpoint every kCheckpointEvery. Stops at the first storage
/// failure (a crash makes every later operation fail too, so the
/// process is effectively dead from that point — exactly like a real
/// one).
WorkloadTrace RunWorkload(FaultInjectionEnv* env) {
  WorkloadTrace trace;
  version::VersionedKnowledgeBase vkb(version::ArchivePolicy::kDeltaChain,
                                      MakeBase(kSeed));
  auto handle = vkb.Handle(0);
  if (!handle.ok()) return trace;
  trace.fingerprints.push_back(handle->fingerprint);

  storage::SnapshotOptions snap_options;
  snap_options.sync = true;
  snap_options.env = env;
  if (!version::SaveCheckpoint(vkb, 0, kCheckpointDir, kKeep, snap_options)
           .ok()) {
    return trace;
  }

  storage::LogOptions log_options;
  log_options.sync_on_append = true;
  log_options.retry.max_attempts = 2;  // a crash is not transient; keep
  log_options.retry.backoff_micros = 10;  // the death quick
  log_options.env = env;
  auto log = storage::CommitLog::Open(kLogPath, log_options);
  if (!log.ok()) return trace;
  vkb.AttachCommitLog(&*log);

  Rng rng(kSeed * 977 + 13);
  for (uint32_t v = 1; v <= kCommits; ++v) {
    auto head = vkb.Snapshot(vkb.head());
    if (!head.ok()) return trace;
    workload::EvolutionOptions options;
    options.operations = static_cast<size_t>(rng.UniformInt(10, 30));
    options.epoch = v;
    options.seed = kSeed + 10 + v;
    if (rng.Bernoulli(0.3)) options.mix = workload::ChangeMix::SchemaHeavy();
    workload::EvolutionOutcome outcome = workload::GenerateEvolution(
        **head, vkb.dictionary(), options);
    auto committed = vkb.Commit(std::move(outcome.changes), "torture",
                                "step " + std::to_string(v),
                                1700000000 + v);
    if (!committed.ok()) return trace;
    trace.acked.push_back(*committed);
    auto fp = vkb.Handle(*committed);
    if (!fp.ok()) return trace;
    trace.fingerprints.push_back(fp->fingerprint);
    if (v % kCheckpointEvery == 0 &&
        !version::SaveCheckpoint(vkb, vkb.head(), kCheckpointDir, kKeep,
                                 snap_options)
             .ok()) {
      return trace;
    }
  }
  trace.completed = true;
  return trace;
}

Result<version::RecoveredKb> Recover(FaultInjectionEnv* env) {
  version::RecoveryOptions options;
  options.policy = version::ArchivePolicy::kDeltaChain;
  options.env = env;
  return version::RecoverFromCheckpoints(kCheckpointDir, kLogPath, options);
}

/// The recovered history must be a prefix of the scripted one: same
/// fingerprints position by position, ending at or before the script.
void ExpectScriptedPrefix(const version::RecoveredKb& recovered,
                          const std::vector<uint64_t>& scripted) {
  const version::VersionId base = recovered.base_version;
  const version::VersionId head = recovered.vkb->head();
  ASSERT_LT(base + head, scripted.size());
  for (version::VersionId j = 0; j <= head; ++j) {
    auto handle = recovered.vkb->Handle(j);
    ASSERT_TRUE(handle.ok());
    EXPECT_EQ(handle->fingerprint, scripted[base + j])
        << "recovered version " << j << " (original id " << base + j
        << ") diverges from the scripted history";
  }
}

TEST(CrashRecoveryTortureTest, EveryCrashPointRecoversToAnAckedPrefix) {
  // Clean reference run: learn the scripted fingerprint chain and the
  // total number of mutating operations T — the crash-point space.
  FaultInjectionEnv clean_env(kSeed);
  const WorkloadTrace script = RunWorkload(&clean_env);
  ASSERT_TRUE(script.completed);
  ASSERT_EQ(script.fingerprints.size(), kCommits + 1);
  const uint64_t total_ops = clean_env.counters().mutating_ops;
  ASSERT_GT(total_ops, 10u);

  // Sanity: the clean run itself recovers completely.
  auto full = Recover(&clean_env);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full->base_version + full->vkb->head(), kCommits);
  ExpectScriptedPrefix(*full, script.fingerprints);

  for (uint64_t k = 1; k <= total_ops; ++k) {
    SCOPED_TRACE("crash at mutating op " + std::to_string(k));
    FaultInjectionEnv env(kSeed);
    FaultPlan plan;
    plan.crash_at_op = static_cast<int64_t>(k);
    plan.torn_tails = true;  // power loss tears, not truncates
    env.set_plan(plan);

    const WorkloadTrace trace = RunWorkload(&env);
    // trace.completed stays possible: a crash landing on best-effort
    // work (checkpoint pruning) doesn't fail the workload — but the
    // invariants below must hold regardless of where the cut landed.
    EXPECT_EQ(env.counters().crashes, 1u);
    env.Restart();
    env.ClearFaults();

    auto recovered = Recover(&env);
    if (!recovered.ok()) {
      // Legitimate only before anything was promised: no commit was
      // ever acknowledged (the very first checkpoint save never became
      // durable, so there is genuinely nothing to restore).
      EXPECT_TRUE(trace.acked.empty())
          << "recovery failed after commits were acknowledged: "
          << recovered.status().ToString();
      continue;
    }

    // Invariant 1+2: scripted prefix with intact fingerprint chain
    // (which also proves no torn record was replayed — a torn record
    // could not extend the chain).
    ExpectScriptedPrefix(*recovered, script.fingerprints);

    // Invariant 3: every fsync-acknowledged commit survived.
    const version::VersionId last =
        recovered->base_version + recovered->vkb->head();
    if (!trace.acked.empty()) {
      EXPECT_GE(last, trace.acked.back())
          << "an acknowledged commit was lost";
    }

    // Liveness: the recovered KB accepts new commits.
    auto head = recovered->vkb->Snapshot(recovered->vkb->head());
    ASSERT_TRUE(head.ok());
    workload::EvolutionOptions options;
    options.operations = 10;
    options.epoch = 99;
    options.seed = kSeed + 999;
    workload::EvolutionOutcome outcome = workload::GenerateEvolution(
        **head, recovered->vkb->dictionary(), options);
    EXPECT_TRUE(recovered->vkb
                    ->Commit(std::move(outcome.changes), "post", "resume")
                    .ok());
  }
}

TEST(CrashRecoveryTortureTest, CorruptCheckpointIsQuarantinedAndBypassed) {
  FaultInjectionEnv env(kSeed);
  const WorkloadTrace script = RunWorkload(&env);
  ASSERT_TRUE(script.completed);

  auto checkpoints = version::ListCheckpoints(kCheckpointDir, &env);
  ASSERT_TRUE(checkpoints.ok());
  ASSERT_GE(checkpoints->size(), 2u);  // keep=2: an older one to fall to
  const std::string newest = checkpoints->back();
  ASSERT_TRUE(env.CorruptFile(newest, 100).ok());  // bit rot

  auto recovered = Recover(&env);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  // The rotten checkpoint was quarantined as evidence and recovery
  // paid a longer log replay from the older one — losing nothing.
  EXPECT_EQ(recovered->report.quarantined,
            std::vector<std::string>{newest});
  EXPECT_TRUE(env.FileExists(newest + ".corrupt"));
  EXPECT_FALSE(env.FileExists(newest));
  EXPECT_EQ(recovered->report.checkpoint_used,
            (*checkpoints)[checkpoints->size() - 2]);
  EXPECT_EQ(recovered->base_version + recovered->vkb->head(), kCommits);
  ExpectScriptedPrefix(*recovered, script.fingerprints);

  // The report narrates all of it for the operator.
  const std::string summary = recovered->report.ToString();
  EXPECT_NE(summary.find(".corrupt"), std::string::npos);
}

TEST(CrashRecoveryTortureTest, LyingFsyncForfeitsTheAcknowledgedCommit) {
  // A disk that acknowledges fsync without persisting defeats any
  // write-ahead log — this documents the boundary of the durability
  // contract: the commit acked over the lying sync is lost, but the
  // recovered history is still a clean, consistent prefix.
  FaultInjectionEnv env(kSeed);
  version::VersionedKnowledgeBase vkb(version::ArchivePolicy::kDeltaChain,
                                      MakeBase(kSeed));
  storage::SnapshotOptions snap_options;
  snap_options.sync = true;
  snap_options.env = &env;
  ASSERT_TRUE(
      version::SaveCheckpoint(vkb, 0, kCheckpointDir, kKeep, snap_options)
          .ok());
  storage::LogOptions log_options;
  log_options.sync_on_append = true;
  log_options.env = &env;
  auto log = storage::CommitLog::Open(kLogPath, log_options);
  ASSERT_TRUE(log.ok());
  vkb.AttachCommitLog(&*log);

  Rng rng(kSeed);
  for (uint32_t v = 1; v <= 2; ++v) {
    if (v == 2) {
      FaultPlan plan;
      plan.lying_syncs = 1;  // the second commit's fsync is a lie
      env.set_plan(plan);
    }
    auto head = vkb.Snapshot(vkb.head());
    ASSERT_TRUE(head.ok());
    workload::EvolutionOptions options;
    options.operations = 12;
    options.epoch = v;
    options.seed = kSeed + v;
    workload::EvolutionOutcome outcome = workload::GenerateEvolution(
        **head, vkb.dictionary(), options);
    ASSERT_TRUE(
        vkb.Commit(std::move(outcome.changes), "liar", "c").ok());
  }
  EXPECT_EQ(env.counters().lied_syncs, 1u);

  env.CrashNow();
  env.Restart();
  auto recovered = Recover(&env);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const version::VersionId last =
      recovered->base_version + recovered->vkb->head();
  EXPECT_EQ(last, 1u);  // commit 2 was acked yet lost — the lie's cost
  // What did survive is version 1, bit for bit on the original chain.
  auto expected = vkb.Handle(1);
  ASSERT_TRUE(expected.ok());
  auto recovered_v1 =
      recovered->vkb->Handle(1 - recovered->base_version);
  ASSERT_TRUE(recovered_v1.ok());
  EXPECT_EQ(recovered_v1->fingerprint, expected->fingerprint);
}

}  // namespace
}  // namespace evorec
