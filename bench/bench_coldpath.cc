// E13 — fast cold path (chain walk + parallel Brandes). Two claims:
//
//  1. Walking a K-version chain through the engine's version-keyed
//     artefact cache performs exactly K betweenness computations and K
//     schema-graph builds, where the pair-keyed path performed
//     2·(K−1) of each — so a cold chain walk is ≥2× faster end to end
//     (artefact dedup × pooled Brandes).
//  2. The ThreadPool overload of Brandes betweenness scales with
//     workers while staying bit-identical to the serial path.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>

#include "bench_common.h"

namespace evorec::bench {
namespace {

constexpr size_t kTransitions = 24;  // K = kTransitions + 1 versions

// A schema-heavy K-version chain (the paper's setting: ontology
// evolution, not instance churn) — classes appear, move and vanish
// across the history, so each pair's union universe differs from both
// versions' own class sets and structural measures do real work.
std::unique_ptr<version::VersionedKnowledgeBase> MakeSchemaHeavyChain(
    uint64_t seed, size_t classes) {
  workload::SchemaGenOptions schema_options;
  schema_options.class_count = classes;
  schema_options.property_count = classes / 2 + 10;
  schema_options.seed = seed;
  workload::GeneratedSchema generated =
      workload::GenerateSchema(schema_options);
  workload::InstanceGenOptions instance_options;
  instance_options.instance_count = classes * 4;
  instance_options.edge_count = classes * 8;
  instance_options.seed = seed + 1;
  workload::PopulateInstances(generated, instance_options);
  auto vkb = std::make_unique<version::VersionedKnowledgeBase>(
      version::ArchivePolicy::kFullMaterialization,
      std::move(generated.kb));
  for (size_t v = 0; v < kTransitions; ++v) {
    auto head = vkb->Snapshot(vkb->head());
    workload::EvolutionOptions evolution_options;
    evolution_options.operations = classes * 2;
    evolution_options.mix = workload::ChangeMix::SchemaHeavy();
    evolution_options.epoch = v + 1;
    evolution_options.seed = seed + 100 + v;
    workload::EvolutionOutcome outcome = workload::GenerateEvolution(
        **head, vkb->dictionary(), evolution_options);
    (void)vkb->Commit(std::move(outcome.changes), "generator",
                      "chain transition " + std::to_string(v + 1),
                      /*timestamp=*/v + 1);
  }
  return vkb;
}

// ---------------------------------------------------------------------------
// Faithful reference implementation of the PRE-PR pair-keyed cold walk,
// kept here so the before/after comparison stays runnable from one
// binary: per pair, both snapshots are copied, both schema views are
// rebuilt, both schema graphs are built over the pair's UNION class
// universe, betweenness runs serially with the old per-node-vector
// Brandes, and the delta index materialises every class neighborhood
// eagerly. Middle versions of the chain pay all of it twice.

std::vector<double> PrePrBetweennessExact(const graph::Graph& g) {
  const size_t n = g.node_count();
  std::vector<double> centrality(n, 0.0);
  std::vector<int64_t> distance;
  std::vector<double> sigma;
  std::vector<double> dependency;
  std::vector<std::vector<graph::NodeId>> predecessors(n);
  std::vector<graph::NodeId> order;
  order.reserve(n);
  for (graph::NodeId s = 0; s < n; ++s) {
    distance.assign(n, -1);
    sigma.assign(n, 0.0);
    dependency.assign(n, 0.0);
    order.clear();
    distance[s] = 0;
    sigma[s] = 1.0;
    predecessors[s].clear();
    order.push_back(s);
    for (size_t qi = 0; qi < order.size(); ++qi) {
      const graph::NodeId v = order[qi];
      for (graph::NodeId w : g.Neighbors(v)) {
        if (distance[w] < 0) {
          distance[w] = distance[v] + 1;
          predecessors[w].clear();
          order.push_back(w);
        }
        if (distance[w] == distance[v] + 1) {
          sigma[w] += sigma[v];
          predecessors[w].push_back(v);
        }
      }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const graph::NodeId w = *it;
      for (graph::NodeId v : predecessors[w]) {
        dependency[v] += sigma[v] / sigma[w] * (1.0 + dependency[w]);
      }
      if (w != s) centrality[w] += dependency[w];
    }
  }
  for (double& c : centrality) c /= 2.0;
  return centrality;
}

std::vector<rdf::TermId> PrePrSortedUnion(
    const std::vector<rdf::TermId>& a, const std::vector<rdf::TermId>& b) {
  std::vector<rdf::TermId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

measures::MeasureReport PrePrBetweennessShift(
    const rdf::KnowledgeBase& before_src,
    const rdf::KnowledgeBase& after_src) {
  // Pre-PR EvolutionContext::Build: copy both snapshots, ...
  const rdf::KnowledgeBase before = before_src;
  const rdf::KnowledgeBase after = after_src;
  const schema::SchemaView view_before = schema::SchemaView::Build(before);
  const schema::SchemaView view_after = schema::SchemaView::Build(after);
  const delta::LowLevelDelta low = delta::ComputeLowLevelDelta(before, after);
  const rdf::Vocabulary& voc = before.vocabulary();

  // ... build the old hash-map delta index (direct counts, a full map
  // copy for extended attribution, and eagerly materialised
  // per-class neighborhood unions), ...
  std::unordered_map<rdf::TermId, size_t> direct =
      delta::PerTermChangeCounts(low);
  std::unordered_map<rdf::TermId, size_t> extended = direct;
  const std::vector<rdf::TermId> union_classes =
      PrePrSortedUnion(view_before.classes(), view_after.classes());
  const auto class_of_instance = [&](rdf::TermId instance) {
    rdf::TermId cls = view_after.TypeOf(instance);
    if (cls == rdf::kAnyTerm) cls = view_before.TypeOf(instance);
    return cls;
  };
  const auto attribute = [&](const rdf::Triple& t) {
    if (t.predicate == voc.rdf_type) return;
    if (voc.IsSchemaPredicate(t.predicate)) return;
    const rdf::TermId cs = class_of_instance(t.subject);
    const rdf::TermId co = class_of_instance(t.object);
    if (cs != rdf::kAnyTerm) ++extended[cs];
    if (co != rdf::kAnyTerm && co != cs) ++extended[co];
  };
  for (const rdf::Triple& t : low.added) attribute(t);
  for (const rdf::Triple& t : low.removed) attribute(t);
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> neighborhoods;
  for (rdf::TermId cls : union_classes) {
    neighborhoods[cls] = PrePrSortedUnion(view_before.Neighborhood(cls),
                                          view_after.Neighborhood(cls));
  }
  benchmark::DoNotOptimize(neighborhoods.size());

  // ... and build both graphs over the pair's union universe.
  const auto g_before = graph::SchemaGraph::Build(view_before, union_classes);
  const auto g_after = graph::SchemaGraph::Build(view_after, union_classes);
  const std::vector<double> b = PrePrBetweennessExact(g_before.graph());
  const std::vector<double> a = PrePrBetweennessExact(g_after.graph());
  measures::MeasureReport report;
  for (size_t i = 0; i < union_classes.size(); ++i) {
    report.Add(union_classes[i], std::abs(a[i] - b[i]));
  }
  return report;
}

Result<measures::EvolutionTimeline> PrePrChainWalk(
    const version::VersionedKnowledgeBase& vkb) {
  std::vector<measures::MeasureReport> reports;
  for (version::VersionId v = 0; v < vkb.head(); ++v) {
    auto before = vkb.Snapshot(v);
    if (!before.ok()) return before.status();
    auto after = vkb.Snapshot(v + 1);
    if (!after.ok()) return after.status();
    reports.push_back(PrePrBetweennessShift(**before, **after));
  }
  return measures::EvolutionTimeline::FromReports(std::move(reports));
}

graph::Graph RandomGraph(size_t n, size_t m, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  edges.reserve(m);
  for (size_t e = 0; e < m; ++e) {
    edges.emplace_back(
        static_cast<graph::NodeId>(
            rng.UniformInt(0, static_cast<int64_t>(n) - 1)),
        static_cast<graph::NodeId>(
            rng.UniformInt(0, static_cast<int64_t>(n) - 1)));
  }
  return graph::Graph::FromEdges(n, std::move(edges));
}

void PrintColdPathTable() {
  PrintHeader("E13 — cold chain walk: pair-keyed vs artefact cache",
              "first-touch latency of a K-version history walk drops "
              ">=2x once per-version artefacts are built once, not "
              "2*(K-1) times");
  TablePrinter table({"scenario", "versions", "pre_pr_ms", "pair_keyed_ms",
                      "engine_ms", "speedup", "pre_pr_brandes",
                      "engine_brandes"});

  measures::MeasureRegistry registry = measures::DefaultRegistry();
  for (uint64_t seed : {101u, 103u}) {
    auto vkb = MakeSchemaHeavyChain(seed, 200);
    const size_t versions = vkb->version_count();
    measures::BetweennessShiftMeasure measure;

    // Warm the versioned KB's snapshot cache so every path measures
    // context work, not delta replay.
    for (size_t v = 0; v < versions; ++v) {
      (void)vkb->Snapshot(static_cast<version::VersionId>(v));
    }

    Stopwatch pre_pr_timer;
    auto pre_pr = PrePrChainWalk(*vkb);
    const double pre_pr_ms = pre_pr_timer.ElapsedMillis();
    if (!pre_pr.ok()) continue;

    // The post-refactor pair-keyed path (no artefact cache): already
    // faster thanks to own-universe graphs, flat kernels and deferred
    // neighborhoods, but still 2·(K−1) artefact builds.
    Stopwatch pair_timer;
    auto classic =
        measures::EvolutionTimeline::Compute(*vkb, measure);
    const double pair_ms = pair_timer.ElapsedMillis();
    if (!classic.ok()) continue;

    Stopwatch engine_timer;
    engine::EvaluationEngine engine(
        registry, {.context_cache_capacity = 2 * kTransitions});
    auto walked = engine.Timeline(*vkb, "betweenness_shift");
    const double engine_ms = engine_timer.ElapsedMillis();
    if (!walked.ok()) continue;

    const engine::ArtefactCacheStats stats = engine.artefact_stats();
    table.AddRow({"schema_heavy/" + std::to_string(seed),
                  TablePrinter::Cell(versions),
                  TablePrinter::Cell(pre_pr_ms, 2),
                  TablePrinter::Cell(pair_ms, 2),
                  TablePrinter::Cell(engine_ms, 2),
                  TablePrinter::Cell(
                      engine_ms > 0 ? pre_pr_ms / engine_ms : 0, 2),
                  TablePrinter::Cell(2 * (versions - 1)),
                  TablePrinter::Cell(stats.betweenness_runs)});
  }
  table.Print(std::cout);
  std::printf(
      "expected shape: engine_brandes == versions (not 2*(K-1)) and "
      "speedup (pre_pr/engine) >= 2.\n");
}

// The pre-PR cold path, faithfully emulated: per-pair contexts with
// union-universe graphs, every middle version's artefacts built twice,
// old serial Brandes, eager neighborhoods.
void BM_ColdChainWalkPrePR(benchmark::State& state) {
  auto vkb = MakeSchemaHeavyChain(111, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto timeline = PrePrChainWalk(*vkb);
    benchmark::DoNotOptimize(timeline.ok());
  }
}
BENCHMARK(BM_ColdChainWalkPrePR)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

// This PR's pair-keyed path (no artefact cache yet): own-universe
// graphs + flat kernels + deferred neighborhoods, still 2·(K−1)
// artefact builds.
void BM_ColdChainWalkPairKeyed(benchmark::State& state) {
  auto vkb = MakeSchemaHeavyChain(111, static_cast<size_t>(state.range(0)));
  measures::BetweennessShiftMeasure measure;
  for (auto _ : state) {
    auto timeline =
        measures::EvolutionTimeline::Compute(*vkb, measure);
    benchmark::DoNotOptimize(timeline.ok());
  }
}
BENCHMARK(BM_ColdChainWalkPairKeyed)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

// The rebuilt cold path: a fresh engine per iteration (nothing warm),
// artefact-cache dedup + pooled Brandes.
void BM_ColdChainWalkEngine(benchmark::State& state) {
  auto vkb = MakeSchemaHeavyChain(111, static_cast<size_t>(state.range(0)));
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  for (auto _ : state) {
    engine::EvaluationEngine engine(
        registry, {.context_cache_capacity = 2 * kTransitions});
    auto timeline = engine.Timeline(*vkb, "betweenness_shift");
    benchmark::DoNotOptimize(timeline.ok());
  }
}
BENCHMARK(BM_ColdChainWalkEngine)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

// Brandes scaling: Arg = worker threads (0 = serial path).
void BM_ParallelBrandes(benchmark::State& state) {
  const graph::Graph g = RandomGraph(1500, 5200, 7);
  std::optional<ThreadPool> pool;
  if (state.range(0) > 0) pool.emplace(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto scores =
        graph::BetweennessExact(g, pool ? &*pool : nullptr);
    benchmark::DoNotOptimize(scores.data());
  }
}
BENCHMARK(BM_ParallelBrandes)->Arg(0)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace evorec::bench

int main(int argc, char** argv) {
  evorec::bench::PrintColdPathTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
