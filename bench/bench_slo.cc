// E16 — production-shaped SLO harness: every StreamGenerator mode
// (bursty commit storms, Zipf-skewed reads, adversarial churn, schema
// shockwaves) is replayed through a RecommendationService over a
// 4-shard KB, and the service's own streaming LatencyRecorders supply
// the per-request p50/p95/p99/p999/max that the declared SLOs are
// checked against. The figure tables are the SloReport verdicts for
// the read path and the commit path; the timing section measures the
// recorder itself (record + summary cost) and steady-state read
// serving per mode, exporting read-path percentiles as counters.
//
// Honesty note: the declared thresholds are deliberately loose —
// they bound pathological regressions (an accidental O(store) scan on
// the serving path), not host speed. The observed-percentile columns
// are the figure; the verdict column is the regression tripwire.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "version/sharded_kb.h"

namespace evorec::bench {
namespace {

using version::ShardedKnowledgeBase;
using version::VersionId;
using workload::StreamEvent;
using workload::StreamMode;
using workload::WorkloadStream;

constexpr StreamMode kAllModes[] = {
    StreamMode::kBurstyCommits, StreamMode::kZipfReads,
    StreamMode::kAdversarialChurn, StreamMode::kSchemaShockwave};

workload::Scenario SloScenario(uint64_t seed) {
  // The E15 serving scale: context builds dominate a cold request,
  // yet a full 4-mode sweep stays in seconds.
  workload::ScenarioScale scale;
  scale.classes = 80;
  scale.properties = 28;
  scale.instances = 1200;
  scale.edges = 2200;
  scale.versions = 2;
  scale.operations = 300;
  return workload::MakeDbpediaLike(seed, scale);
}

workload::StreamOptions SloStreamOptions(StreamMode mode) {
  workload::StreamOptions options;
  options.mode = mode;
  options.reads = 120;
  options.commits = 8;
  options.population = 24;
  options.ops_per_commit = 12;
  options.burst_on = 4;
  options.burst_off = 30;
  options.flap_block = 10;
  options.seed = 1600 + static_cast<uint64_t>(mode);
  return options;
}

std::unique_ptr<ShardedKnowledgeBase> ShardScenario(
    const workload::Scenario& scenario, size_t shards) {
  auto base = scenario.vkb->Snapshot(0);
  if (!base.ok()) return nullptr;
  auto sharded = std::make_unique<ShardedKnowledgeBase>(
      ShardedKnowledgeBase::Options{.shards = shards}, **base);
  for (VersionId v = 1; v <= scenario.vkb->head(); ++v) {
    auto cs = scenario.vkb->Changes(v);
    if (!cs.ok()) return nullptr;
    if (!sharded->Commit(std::move(cs).value(), "replay", "seed", v).ok()) {
      return nullptr;
    }
  }
  return sharded;
}

engine::ServiceOptions SloServiceOptions() {
  engine::ServiceOptions options;
  options.recommender.record_seen = false;
  options.engine.threads = 4;
  return options;
}

// Replays the whole stream in event order through the service — reads
// one request at a time (each with a fresh profile copy, the serving
// diet of a stateless frontend), commits through the full
// commit-plus-refresh path. Returns false on any failure.
bool ReplayStream(engine::RecommendationService& service,
                  ShardedKnowledgeBase& sharded, const WorkloadStream& stream) {
  size_t commit_index = 0;
  for (const StreamEvent& event : stream.events) {
    if (event.kind == StreamEvent::Kind::kRead) {
      profile::HumanProfile prof = stream.users[event.user];
      auto list = service.Recommend(sharded, event.before, event.after, prof);
      if (!list.ok()) return false;
      benchmark::DoNotOptimize(list->items.size());
    } else {
      version::ChangeSet copy = event.changes;
      auto id = service.Commit(sharded, std::move(copy), "stream",
                               "c" + std::to_string(commit_index++),
                               event.timestamp_us);
      if (!id.ok()) return false;
    }
  }
  return true;
}

// Loose-by-design regression bounds (see the honesty note above).
SloThreshold ReadSlo() {
  SloThreshold slo;
  slo.p99_us = 2e6;   // 2 s
  slo.max_us = 10e6;  // 10 s
  return slo;
}

SloThreshold CommitSlo() {
  SloThreshold slo;
  slo.p99_us = 5e6;   // 5 s
  slo.max_us = 20e6;  // 20 s
  return slo;
}

void PrintSloTables() {
  PrintHeader(
      "E16 — SLO percentiles under production-shaped streams",
      "per-request latency distributions stay bounded across bursty "
      "commit storms, Zipf-skewed reads, adversarial churn and schema "
      "shockwaves; percentiles come from the service's own streaming "
      "recorder (bounded relative error, one relaxed increment per "
      "sample)");

  const measures::MeasureRegistry registry = measures::DefaultRegistry();
  SloReport read_report;
  SloReport commit_report;
  for (StreamMode mode : kAllModes) {
    workload::Scenario scenario =
        SloScenario(161 + static_cast<uint64_t>(mode));
    WorkloadStream stream =
        workload::GenerateStream(scenario, SloStreamOptions(mode));
    auto sharded = ShardScenario(scenario, 4);
    if (sharded == nullptr) continue;

    engine::RecommendationService service(registry, SloServiceOptions());
    if (!service.WarmStart(*sharded, 0, 1).ok()) continue;
    service.ResetLatency();  // the replay is the recorded section
    if (!ReplayStream(service, *sharded, stream)) continue;

    const std::string name = workload::StreamModeName(mode);
    read_report.Add(name + " reads", service.read_latency().Summary(),
                    ReadSlo());
    commit_report.Add(name + " commits", service.commit_latency().Summary(),
                      CommitSlo());
  }

  std::printf("read path (one sample per served request):\n%s",
              read_report.ToTable().c_str());
  std::printf("\ncommit path (commit + incremental engine refresh):\n%s",
              commit_report.ToTable().c_str());
  std::printf("\nSLO verdict: %s\n",
              read_report.AllMet() && commit_report.AllMet()
                  ? "ALL MET"
                  : "VIOLATED (see rows above)");
  std::printf(
      "expected shape: read percentiles sit far below the declared "
      "bounds in every mode (warm serves are cache hits), the commit "
      "tail is widest under schema-shockwave (full-frontier refresh), "
      "and the p999/max gap stays small — no hidden O(store) work on "
      "either path.\n");
}

// Timing section — the committed BENCH_* evidence.

// One sample into the streaming recorder: the cost added to every
// served request (claimed: one relaxed increment + two CAS reads).
void BM_LatencyRecorderRecord(benchmark::State& state) {
  LatencyRecorder recorder;
  uint64_t v = 1;
  for (auto _ : state) {
    recorder.Record(static_cast<double>(v));
    v = v * 2862933555777941757ull + 3037000493ull;  // cheap LCG spread
  }
  benchmark::DoNotOptimize(recorder.count());
}
BENCHMARK(BM_LatencyRecorderRecord)->Unit(benchmark::kNanosecond);

// Full percentile summary over a populated recorder: the cost of one
// SLO report row (a bucket walk, no sample sort).
void BM_LatencyRecorderSummary(benchmark::State& state) {
  LatencyRecorder recorder;
  uint64_t v = 1;
  for (size_t i = 0; i < 100000; ++i) {
    recorder.Record(static_cast<double>(v % 1000000));
    v = v * 2862933555777941757ull + 3037000493ull;
  }
  for (auto _ : state) {
    PercentileSummary summary = recorder.Summary();
    benchmark::DoNotOptimize(summary.p99_us);
  }
}
BENCHMARK(BM_LatencyRecorderSummary)->Unit(benchmark::kMicrosecond);

// Steady-state read serving per stream mode: every commit of the mode's
// stream is pre-landed, then the stream's read schedule is served
// round-robin against warm caches. Exports the service recorder's
// p50/p99 as counters — the timed mean plus its tail in one row.
void BM_StreamReadServe(benchmark::State& state) {
  const StreamMode mode = kAllModes[state.range(0)];
  const measures::MeasureRegistry registry = measures::DefaultRegistry();
  workload::Scenario scenario = SloScenario(161 + static_cast<uint64_t>(mode));
  WorkloadStream stream =
      workload::GenerateStream(scenario, SloStreamOptions(mode));
  auto sharded = ShardScenario(scenario, 4);
  if (sharded == nullptr) {
    state.SkipWithError("shard replay failed");
    return;
  }
  engine::RecommendationService service(registry, SloServiceOptions());
  size_t commit_index = 0;
  for (const StreamEvent& event : stream.events) {
    if (event.kind != StreamEvent::Kind::kCommit) continue;
    version::ChangeSet copy = event.changes;
    if (!service
             .Commit(*sharded, std::move(copy), "stream",
                     "c" + std::to_string(commit_index++), event.timestamp_us)
             .ok()) {
      state.SkipWithError("commit failed");
      return;
    }
  }
  std::vector<const StreamEvent*> reads;
  for (const StreamEvent& event : stream.events) {
    if (event.kind == StreamEvent::Kind::kRead) reads.push_back(&event);
  }
  if (reads.empty()) {
    state.SkipWithError("no reads in stream");
    return;
  }
  service.ResetLatency();
  size_t next = 0;
  for (auto _ : state) {
    const StreamEvent& event = *reads[next % reads.size()];
    profile::HumanProfile prof = stream.users[event.user];
    auto list = service.Recommend(*sharded, event.before, event.after, prof);
    if (!list.ok()) state.SkipWithError("read failed");
    benchmark::DoNotOptimize(list.ok());
    ++next;
  }
  const PercentileSummary summary = service.read_latency().Summary();
  state.counters["p50_us"] = summary.p50_us;
  state.counters["p99_us"] = summary.p99_us;
}
BENCHMARK(BM_StreamReadServe)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace evorec::bench

int main(int argc, char** argv) {
  evorec::bench::PrintSloTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
