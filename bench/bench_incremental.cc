// E14 — incremental measure maintenance. The serving-loop write path:
// after a commit of |δ| triples, CommitAndRefresh advances the head
// artefacts from the predecessor's (affected-source frontier, cached
// chunk splicing, O(|δ|) delta derivation) instead of rebuilding them
// — while producing bit-identical results (proven by the differential
// suite; this binary measures the speed side of the claim).
//
// Claim: at small commits (≤10 triples) the refresh is ≥5× faster
// than the full per-commit recompute the cold path performs, and the
// advantage decays gracefully as commits grow toward whole-graph
// churn.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"

namespace evorec::bench {
namespace {

constexpr size_t kClasses = 1600;  // schema-heavy: Brandes dominates

// Base history: a schema-heavy KB with one committed transition, so
// the engines have a (head−1, head) pair to warm up on.
std::unique_ptr<version::VersionedKnowledgeBase> MakeBase(uint64_t seed) {
  workload::SchemaGenOptions schema_options;
  schema_options.class_count = kClasses;
  schema_options.property_count = kClasses / 2 + 10;
  schema_options.seed = seed;
  workload::GeneratedSchema generated =
      workload::GenerateSchema(schema_options);
  workload::InstanceGenOptions instance_options;
  instance_options.instance_count = kClasses;
  instance_options.edge_count = kClasses * 2;
  instance_options.seed = seed + 1;
  workload::PopulateInstances(generated, instance_options);
  auto vkb = std::make_unique<version::VersionedKnowledgeBase>(
      version::ArchivePolicy::kFullMaterialization, std::move(generated.kb));
  auto head = vkb->Snapshot(vkb->head());
  workload::EvolutionOptions evolution_options;
  evolution_options.operations = kClasses;
  evolution_options.mix = workload::ChangeMix::SchemaHeavy();
  evolution_options.seed = seed + 2;
  workload::EvolutionOutcome outcome = workload::GenerateEvolution(
      **head, vkb->dictionary(), evolution_options);
  (void)vkb->Commit(std::move(outcome.changes), "generator", "base", 1);
  return vkb;
}

workload::EvolutionOptions CommitOptions(size_t operations, size_t step) {
  workload::EvolutionOptions options;
  options.operations = operations;
  // Instance churn: the everyday small commit. The class universe
  // stays fixed, so the refresher always takes the advance path and
  // the frontier tracks the actual adjacency perturbation.
  options.mix = workload::ChangeMix::InstanceChurn();
  options.epoch = 100 + step;
  options.seed = 9000 + step;
  return options;
}

// Warms an engine on the current head pair and forces the head
// version's betweenness, so the first refresh has a ready predecessor
// (the steady serving-loop state).
void WarmHeadPair(engine::EvaluationEngine& engine,
                  const version::VersionedKnowledgeBase& vkb) {
  auto warm = engine.Evaluate(vkb, vkb.head() - 1, vkb.head());
  if (warm.ok()) (void)(*warm)->context().betweenness_after();
}

void PrintIncrementalTable() {
  PrintHeader("E14 — per-commit refresh vs full recompute",
              "a <=10-triple commit refreshes the head evaluation >=5x "
              "faster than the cold path's full per-version rebuild, "
              "with measured work proportional to the affected-source "
              "frontier");
  TablePrinter table({"commit_ops", "delta_triples", "refresh_ms", "full_ms",
                      "speedup", "affected_sources", "total_sources"});

  measures::MeasureRegistry registry = measures::DefaultRegistry();
  constexpr size_t kRepeats = 4;
  for (size_t operations : {1u, 4u, 12u, 40u, 400u}) {
    // Two identically-seeded histories: the refresher advances through
    // one, the cold engine re-evaluates fresh heads of the other. The
    // deterministic generator replays the same logical commit stream
    // on both.
    auto vkb_refresh = MakeBase(501);
    auto vkb_cold = MakeBase(501);

    engine::EvaluationEngine refresher(registry, {.threads = 4});
    engine::EvaluationEngine cold(registry, {.threads = 4});
    WarmHeadPair(refresher, *vkb_refresh);
    WarmHeadPair(cold, *vkb_cold);

    double refresh_ms = 0.0;
    double full_ms = 0.0;
    size_t delta_triples = 0;
    const engine::IncrementalStats before = refresher.incremental_stats();
    for (size_t step = 0; step < kRepeats; ++step) {
      const workload::EvolutionOptions options =
          CommitOptions(operations, operations * 10 + step);

      auto head_r = vkb_refresh->Snapshot(vkb_refresh->head());
      if (!head_r.ok()) return;
      workload::EvolutionOutcome stream_r = workload::GenerateEvolution(
          **head_r, vkb_refresh->dictionary(), options);
      Stopwatch refresh_timer;
      auto refreshed = refresher.CommitAndRefresh(
          *vkb_refresh, std::move(stream_r.changes), "bench", "refresh");
      if (!refreshed.ok()) return;
      (void)refreshed->evaluation->context().betweenness_after();
      refresh_ms += refresh_timer.ElapsedMillis();
      delta_triples +=
          refreshed->evaluation->context().low_level_delta().size();

      auto head_c = vkb_cold->Snapshot(vkb_cold->head());
      if (!head_c.ok()) return;
      workload::EvolutionOutcome stream_c = workload::GenerateEvolution(
          **head_c, vkb_cold->dictionary(), options);
      if (!vkb_cold->Commit(std::move(stream_c.changes), "bench", "cold")
               .ok()) {
        return;
      }
      Stopwatch full_timer;
      auto rebuilt =
          cold.Evaluate(*vkb_cold, vkb_cold->head() - 1, vkb_cold->head());
      if (!rebuilt.ok()) return;
      (void)(*rebuilt)->context().betweenness_after();
      full_ms += full_timer.ElapsedMillis();
    }
    const engine::IncrementalStats after = refresher.incremental_stats();

    table.AddRow({TablePrinter::Cell(operations),
                  TablePrinter::Cell(
                      static_cast<double>(delta_triples) / kRepeats, 1),
                  TablePrinter::Cell(refresh_ms / kRepeats, 3),
                  TablePrinter::Cell(full_ms / kRepeats, 3),
                  TablePrinter::Cell(
                      refresh_ms > 0 ? full_ms / refresh_ms : 0, 2),
                  TablePrinter::Cell(after.affected_sources -
                                     before.affected_sources),
                  TablePrinter::Cell(after.total_sources -
                                     before.total_sources)});
  }
  table.Print(std::cout);
  std::printf(
      "expected shape: speedup >= 5 on the small-commit rows, decaying "
      "toward 1 as affected_sources approaches total_sources.\n");
}

// How many commits a timed run stacks onto one history before
// resetting to a fresh base (inside PauseTiming). Without the reset a
// long random churn stream drifts the instance population until most
// commits perturb class adjacency — a different regime than the
// steady small-history serving loop the claim is about (and the one
// the untimed table measures).
constexpr size_t kTimedResetInterval = 8;

// Timed: one incremental refresh per iteration, manual timing (the
// Stopwatch brackets exactly the commit+refresh+betweenness interval;
// commit generation and history resets never pollute the clock).
// Arg = generator operations per commit.
void BM_CommitAndRefresh(benchmark::State& state) {
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  std::unique_ptr<version::VersionedKnowledgeBase> vkb;
  std::unique_ptr<engine::EvaluationEngine> engine;
  size_t step = 0;
  double delta_triples = 0;
  for (auto _ : state) {
    if (step % kTimedResetInterval == 0) {
      vkb = MakeBase(601);
      engine = std::make_unique<engine::EvaluationEngine>(
          registry, engine::EngineOptions{.threads = 4});
      WarmHeadPair(*engine, *vkb);
    }
    auto head = vkb->Snapshot(vkb->head());
    workload::EvolutionOutcome outcome = workload::GenerateEvolution(
        **head, vkb->dictionary(),
        CommitOptions(static_cast<size_t>(state.range(0)), step++));
    Stopwatch timer;
    auto refreshed = engine->CommitAndRefresh(
        *vkb, std::move(outcome.changes), "bench", "bm");
    if (refreshed.ok()) {
      benchmark::DoNotOptimize(
          refreshed->evaluation->context().betweenness_after().data());
      delta_triples += static_cast<double>(
          refreshed->evaluation->context().low_level_delta().size());
    }
    state.SetIterationTime(timer.ElapsedMillis() / 1000.0);
  }
  state.counters["delta_triples"] =
      benchmark::Counter(delta_triples, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CommitAndRefresh)->Arg(1)->Arg(4)->Arg(12)->Arg(40)->Arg(400)
    ->UseManualTime()->Unit(benchmark::kMillisecond);

// Timed baseline: the cold path's answer to the same commit — a full
// rebuild of the new head's artefacts plus a store-diff pair build.
void BM_ColdEvaluateAfterCommit(benchmark::State& state) {
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  std::unique_ptr<version::VersionedKnowledgeBase> vkb;
  std::unique_ptr<engine::EvaluationEngine> engine;
  size_t step = 0;
  for (auto _ : state) {
    if (step % kTimedResetInterval == 0) {
      vkb = MakeBase(601);
      engine = std::make_unique<engine::EvaluationEngine>(
          registry, engine::EngineOptions{.threads = 4});
      WarmHeadPair(*engine, *vkb);
    }
    auto head = vkb->Snapshot(vkb->head());
    workload::EvolutionOutcome outcome = workload::GenerateEvolution(
        **head, vkb->dictionary(),
        CommitOptions(static_cast<size_t>(state.range(0)), step++));
    (void)vkb->Commit(std::move(outcome.changes), "bench", "bm");
    Stopwatch timer;
    auto rebuilt = engine->Evaluate(*vkb, vkb->head() - 1, vkb->head());
    if (rebuilt.ok()) {
      benchmark::DoNotOptimize(
          (*rebuilt)->context().betweenness_after().data());
    }
    state.SetIterationTime(timer.ElapsedMillis() / 1000.0);
  }
}
BENCHMARK(BM_ColdEvaluateAfterCommit)
    ->Arg(1)->Arg(4)->Arg(12)->Arg(40)->Arg(400)
    ->UseManualTime()->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace evorec::bench

int main(int argc, char** argv) {
  evorec::bench::PrintIncrementalTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
