#ifndef EVOREC_BENCH_BENCH_COMMON_H_
#define EVOREC_BENCH_BENCH_COMMON_H_

// Shared helpers for the experiment harness. Every bench binary
// prints its experiment table(s) (the "figure data" recorded in
// EXPERIMENTS.md) from main(), then runs its google-benchmark timing
// section.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>

#include "evorec.h"

namespace evorec::bench {

/// Builds a two-version synthetic KB of the given scale and returns
/// (before, after) contexts-ready snapshots plus ground truth.
struct TwoVersionWorkload {
  workload::GeneratedSchema generated;
  rdf::KnowledgeBase after;
  workload::EvolutionOutcome outcome;
};

inline TwoVersionWorkload MakeTwoVersionWorkload(
    size_t classes, size_t instances, size_t edges, size_t operations,
    uint64_t seed, const workload::ChangeMix& mix = workload::ChangeMix()) {
  workload::SchemaGenOptions schema_options;
  schema_options.class_count = classes;
  schema_options.property_count = classes / 3 + 5;
  schema_options.seed = seed;
  TwoVersionWorkload out{workload::GenerateSchema(schema_options), {}, {}};

  workload::InstanceGenOptions instance_options;
  instance_options.instance_count = instances;
  instance_options.edge_count = edges;
  instance_options.seed = seed + 1;
  workload::PopulateInstances(out.generated, instance_options);

  workload::EvolutionOptions evolution_options;
  evolution_options.operations = operations;
  evolution_options.mix = mix;
  evolution_options.seed = seed + 2;
  out.outcome = workload::GenerateEvolution(
      out.generated.kb, out.generated.kb.dictionary(), evolution_options);

  out.after = out.generated.kb;
  out.after.store().AddAll(out.outcome.changes.additions);
  out.after.store().RemoveAll(out.outcome.changes.removals);
  out.after.store().Compact();
  return out;
}

/// Prints the standard experiment banner.
inline void PrintHeader(const std::string& experiment_id,
                        const std::string& claim) {
  std::printf("\n================================================\n");
  std::printf("%s\n", experiment_id.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("================================================\n");
}

/// Precision@k of a report's top-k against a planted ground-truth set.
inline double PrecisionAtK(const measures::MeasureReport& report,
                           const std::vector<rdf::TermId>& truth, size_t k) {
  if (k == 0) return 0.0;
  const auto top = report.TopKTerms(k);
  size_t hits = 0;
  for (rdf::TermId t : top) {
    for (rdf::TermId g : truth) {
      if (t == g) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(std::min(k, top.size() == 0 ? k : top.size()));
}

}  // namespace evorec::bench

#endif  // EVOREC_BENCH_BENCH_COMMON_H_
