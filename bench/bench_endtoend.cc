// E10 — end-to-end processing model (paper §I/§IV): commit → context →
// candidates → recommendation at interactive cost. Per-stage wall
// clock for each scenario preset, individual and group runs.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace evorec::bench {
namespace {

void PrintEndToEndTable() {
  PrintHeader("E10 — end-to-end pipeline decomposition",
              "the processing model serves individual & group "
              "recommendations interactively");
  TablePrinter table({"scenario", "triples", "context_ms", "candidates_ms",
                      "user_rec_ms", "group_rec_ms", "pool", "items"});

  struct Preset {
    const char* name;
    workload::Scenario scenario;
  };
  workload::ScenarioScale scale;
  scale.classes = 100;
  scale.properties = 35;
  scale.instances = 2000;
  scale.edges = 3500;
  scale.versions = 3;
  scale.operations = 400;
  std::vector<Preset> presets;
  presets.push_back({"dbpedia_like", workload::MakeDbpediaLike(81, scale)});
  presets.push_back({"clinical_kb", workload::MakeClinicalKb(83, scale)});
  presets.push_back({"social_feed", workload::MakeSocialFeed(87, scale)});

  measures::MeasureRegistry registry = measures::DefaultRegistry();
  for (Preset& preset : presets) {
    workload::Scenario& scenario = preset.scenario;
    Stopwatch context_timer;
    auto ctx = measures::EvolutionContext::FromVersions(
        *scenario.vkb, scenario.vkb->head() - 1, scenario.vkb->head());
    const double context_ms = context_timer.ElapsedMillis();
    if (!ctx.ok()) continue;

    Stopwatch candidate_timer;
    auto pool = recommend::GenerateCandidates(registry, *ctx, {});
    const double candidates_ms = candidate_timer.ElapsedMillis();
    if (!pool.ok()) continue;

    recommend::Recommender recommender(registry, {});
    if (preset.name == std::string("clinical_kb")) {
      recommender.AttachAccessPolicy(&scenario.policy);
    }
    Stopwatch user_timer;
    auto user_list =
        recommender.RecommendForUser(*ctx, scenario.end_user);
    const double user_ms = user_timer.ElapsedMillis();
    Stopwatch group_timer;
    auto group_list =
        recommender.RecommendForGroup(*ctx, scenario.curators);
    const double group_ms = group_timer.ElapsedMillis();
    if (!user_list.ok() || !group_list.ok()) continue;

    const auto head = scenario.vkb->Snapshot(scenario.vkb->head());
    table.AddRow({preset.name, TablePrinter::Cell((*head)->size()),
                  TablePrinter::Cell(context_ms, 1),
                  TablePrinter::Cell(candidates_ms, 1),
                  TablePrinter::Cell(user_ms, 1),
                  TablePrinter::Cell(group_ms, 1),
                  TablePrinter::Cell(user_list->candidate_pool_size),
                  TablePrinter::Cell(user_list->items.size())});
  }
  table.Print(std::cout);
  std::printf(
      "expected shape: every stage stays interactive (well under a "
      "second at this scale); context build dominates.\n");
}

void BM_EndToEndUser(benchmark::State& state) {
  workload::ScenarioScale scale;
  scale.classes = static_cast<size_t>(state.range(0));
  scale.instances = scale.classes * 20;
  scale.edges = scale.classes * 35;
  scale.versions = 2;
  scale.operations = scale.classes * 4;
  workload::Scenario scenario = workload::MakeDbpediaLike(91, scale);
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  recommend::RecommenderOptions options;
  options.record_seen = false;
  recommend::Recommender recommender(registry, options);
  auto ctx = measures::EvolutionContext::FromVersions(
      *scenario.vkb, scenario.vkb->head() - 1, scenario.vkb->head());
  for (auto _ : state) {
    auto list = recommender.RecommendForUser(*ctx, scenario.end_user);
    benchmark::DoNotOptimize(list.ok());
  }
}
BENCHMARK(BM_EndToEndUser)->Arg(50)->Arg(100);

void BM_ContextBuild(benchmark::State& state) {
  workload::ScenarioScale scale;
  scale.classes = static_cast<size_t>(state.range(0));
  scale.instances = scale.classes * 20;
  scale.edges = scale.classes * 35;
  scale.versions = 2;
  scale.operations = scale.classes * 4;
  workload::Scenario scenario = workload::MakeDbpediaLike(93, scale);
  for (auto _ : state) {
    auto ctx = measures::EvolutionContext::FromVersions(
        *scenario.vkb, scenario.vkb->head() - 1, scenario.vkb->head());
    benchmark::DoNotOptimize(ctx.ok());
  }
}
BENCHMARK(BM_ContextBuild)->Arg(50)->Arg(200);

}  // namespace
}  // namespace evorec::bench

int main(int argc, char** argv) {
  evorec::bench::PrintEndToEndTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
