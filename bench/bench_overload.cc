// E17 — overload robustness: goodput and admitted-tail latency with
// admission control on vs off, offered load at 2x measured capacity.
//
// Method: a single-worker queue simulation in *virtual* time. The
// serving cost of one warm request is measured for real (wall clock),
// then a constant arrival stream at twice that service rate is pushed
// through a RecommendationService whose Env clock is a scripted
// FaultInjectionEnv — so the admission controller's queue-time cap
// sees exactly the virtual waits the queue model produces, while each
// admitted request still pays its real serving cost. The unprotected
// baseline serves everything and its tail latency grows with queue
// depth; the protected run sheds rotted requests and keeps the
// admitted tail inside the SLO at ~capacity goodput.
//
// Honesty note: the verdict thresholds (p99 within 8x one service
// time, goodput within 10% of capacity, baseline blow-up >= 10x) are
// deliberately coarse — they check the control loop works, not host
// speed. The printed table is the figure; the timed section measures
// the admission/breaker primitives themselves (the cost added to every
// request).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "storage/fault_env.h"
#include "version/sharded_kb.h"

namespace evorec::bench {
namespace {

using engine::AdmissionController;
using engine::AdmissionLane;
using engine::AdmissionOptions;
using engine::BreakerOptions;
using engine::CircuitBreaker;
using storage::FaultInjectionEnv;
using version::ShardedKnowledgeBase;
using version::VersionId;

workload::Scenario OverloadScenario(uint64_t seed) {
  workload::ScenarioScale scale;
  scale.classes = 80;
  scale.properties = 28;
  scale.instances = 1200;
  scale.edges = 2200;
  scale.versions = 2;
  scale.operations = 300;
  return workload::MakeDbpediaLike(seed, scale);
}

std::unique_ptr<ShardedKnowledgeBase> ShardScenario(
    const workload::Scenario& scenario, size_t shards) {
  auto base = scenario.vkb->Snapshot(0);
  if (!base.ok()) return nullptr;
  auto sharded = std::make_unique<ShardedKnowledgeBase>(
      ShardedKnowledgeBase::Options{.shards = shards}, **base);
  for (VersionId v = 1; v <= scenario.vkb->head(); ++v) {
    auto cs = scenario.vkb->Changes(v);
    if (!cs.ok()) return nullptr;
    if (!sharded->Commit(std::move(cs).value(), "replay", "seed", v).ok()) {
      return nullptr;
    }
  }
  return sharded;
}

struct SimResult {
  size_t offered = 0;
  size_t served = 0;
  size_t shed = 0;
  double virtual_seconds = 0.0;  ///< simulated duration
  double goodput_rps = 0.0;      ///< served / virtual duration
  PercentileSummary e2e;         ///< admitted end-to-end (wait + service)
};

// Single-worker queue at constant offered rate. Requests arrive every
// `gap_us` of virtual time; the worker serves them FIFO, each serve
// costing its real measured wall time. Admission (when the service has
// it enabled) decides at dequeue; a shed request frees the worker
// immediately.
SimResult SimulateConstantLoad(engine::RecommendationService& service,
                               FaultInjectionEnv& env,
                               ShardedKnowledgeBase& sharded,
                               const std::vector<profile::HumanProfile>& users,
                               size_t requests, double gap_us) {
  SimResult out;
  out.offered = requests;
  LatencyRecorder e2e;
  uint64_t clock_us = env.NowMicros();
  double worker_free_us = 0.0;
  for (size_t i = 0; i < requests; ++i) {
    const double arrival_us = static_cast<double>(i) * gap_us;
    // The worker picks the request up when both it and the request are
    // ready; that instant is when admission sees it.
    const double pickup_us = std::max(arrival_us, worker_free_us);
    const uint64_t target_us = static_cast<uint64_t>(pickup_us);
    if (target_us > clock_us) {
      env.AdvanceClockMicros(target_us - clock_us);
      clock_us = target_us;
    }
    RequestBudget budget;
    budget.enqueue_us = static_cast<uint64_t>(arrival_us);
    profile::HumanProfile prof = users[i % users.size()];
    Stopwatch watch;
    auto list = service.Recommend(sharded, 0, 1, prof, budget);
    if (list.ok()) {
      const double service_us = static_cast<double>(watch.ElapsedMicros());
      worker_free_us = pickup_us + service_us;
      e2e.Record(worker_free_us - arrival_us);
      ++out.served;
    } else {
      // Shed at dequeue: the refusal itself is ~free in virtual time.
      worker_free_us = pickup_us;
      ++out.shed;
    }
  }
  const double end_us = std::max(
      worker_free_us, static_cast<double>(requests - 1) * gap_us);
  out.virtual_seconds = end_us * 1e-6;
  out.goodput_rps = out.virtual_seconds > 0.0
                        ? static_cast<double>(out.served) / out.virtual_seconds
                        : 0.0;
  out.e2e = e2e.Summary();
  return out;
}

void PrintOverloadTable() {
  PrintHeader(
      "E17 — goodput and tail latency past the capacity cliff",
      "with deadline-aware admission control a service offered 2x its "
      "capacity sheds the excess with typed errors and keeps admitted "
      "p99 inside the SLO at ~capacity goodput; without it every "
      "request is eventually served but the queue grows without bound "
      "and the tail latency blows up by orders of magnitude");

  const measures::MeasureRegistry registry = measures::DefaultRegistry();
  workload::Scenario scenario = OverloadScenario(171);
  auto sharded = ShardScenario(scenario, 4);
  if (sharded == nullptr) {
    std::printf("shard replay failed; skipping table\n");
    return;
  }

  // A small user population served round-robin with fresh copies (the
  // stateless-frontend diet; record_seen off so serves are pure).
  std::vector<profile::HumanProfile> users;
  for (int i = 0; i < 8; ++i) {
    profile::HumanProfile prof = scenario.end_user;
    users.push_back(std::move(prof));
  }

  // Measure the warm service time for real.
  auto measure_service_us = [&](engine::RecommendationService& service) {
    double total = 0.0;
    constexpr int kProbes = 24;
    for (int i = 0; i < kProbes; ++i) {
      profile::HumanProfile prof = users[i % users.size()];
      Stopwatch watch;
      auto list = service.Recommend(*sharded, 0, 1, prof);
      if (!list.ok()) return 0.0;
      total += static_cast<double>(watch.ElapsedMicros());
    }
    return total / kProbes;
  };

  constexpr size_t kRequests = 600;
  auto make_options = [&](FaultInjectionEnv* env, bool admission,
                          double service_us) {
    engine::ServiceOptions options;
    options.recommender.record_seen = false;
    options.engine.threads = 4;
    options.env = env;
    if (admission) {
      options.overload.admission_enabled = true;
      // Shed anything that rotted in queue longer than 5 service
      // times: serving it would only push the SLO miss downstream.
      options.overload.admission.max_queue_us =
          static_cast<uint64_t>(5.0 * service_us);
      options.overload.admission.max_in_flight = 0;  // queue cap decides
    }
    return options;
  };

  // Calibrate capacity on a throwaway unprotected service.
  FaultInjectionEnv calibration_env;
  engine::RecommendationService calibration(
      registry, make_options(&calibration_env, false, 0.0));
  if (!calibration.WarmStart(*sharded, 0, 1).ok()) {
    std::printf("warm start failed; skipping table\n");
    return;
  }
  const double service_us = measure_service_us(calibration);
  if (service_us <= 0.0) {
    std::printf("calibration failed; skipping table\n");
    return;
  }
  const double capacity_rps = 1e6 / service_us;
  const double gap_us = service_us / 2.0;  // offered = 2x capacity
  const double slo_p99_us = 8.0 * service_us;

  std::printf(
      "calibrated warm service time: %.0f us  =>  capacity %.1f req/s, "
      "offered %.1f req/s (2x), SLO p99 = %.0f us (8 service times)\n\n",
      service_us, capacity_rps, 2.0 * capacity_rps, slo_p99_us);

  SimResult results[2];
  const char* labels[2] = {"no admission", "admission on"};
  for (int run = 0; run < 2; ++run) {
    FaultInjectionEnv env;
    engine::RecommendationService service(
        registry, make_options(&env, run == 1, service_us));
    if (!service.WarmStart(*sharded, 0, 1).ok()) return;
    results[run] =
        SimulateConstantLoad(service, env, *sharded, users, kRequests, gap_us);
  }

  std::printf(
      "%-14s %8s %8s %8s %12s %12s %12s %12s\n", "config", "offered",
      "served", "shed", "goodput/s", "p50 us", "p99 us", "max us");
  for (int run = 0; run < 2; ++run) {
    const SimResult& r = results[run];
    std::printf("%-14s %8zu %8zu %8zu %12.1f %12.0f %12.0f %12.0f\n",
                labels[run], r.offered, r.served, r.shed, r.goodput_rps,
                r.e2e.p50_us, r.e2e.p99_us, r.e2e.max_us);
  }

  const SimResult& base = results[0];
  const SimResult& guarded = results[1];
  const bool p99_in_slo = guarded.e2e.p99_us <= slo_p99_us;
  const bool goodput_held =
      guarded.goodput_rps >= 0.9 * std::min(capacity_rps, 2.0 * capacity_rps);
  const bool baseline_blew =
      base.e2e.p99_us >= 10.0 * guarded.e2e.p99_us;
  std::printf(
      "\nverdicts: admitted p99 within SLO: %s | goodput >= 90%% of "
      "capacity: %s | unprotected p99 >= 10x protected: %s\n",
      p99_in_slo ? "MET" : "VIOLATED", goodput_held ? "MET" : "VIOLATED",
      baseline_blew ? "MET" : "VIOLATED");
  std::printf(
      "expected shape: the unprotected queue's wait grows linearly all "
      "run long (its p99 is dominated by the final queue depth), while "
      "the protected run's sheds hold every admitted wait under the "
      "queue cap.\n");
}

// Ramp figure: the kOverloadRamp stream's arrival schedule replayed
// through the protected simulation — sheds concentrate in the late,
// past-capacity portion of the ramp.
void PrintRampTable() {
  PrintHeader(
      "E17b — shed placement under a load ramp",
      "as the overload-ramp stream pushes offered load from 1x toward "
      "8x the base rate, shedding starts only once arrivals outpace "
      "capacity and intensifies toward the end of the ramp");

  const measures::MeasureRegistry registry = measures::DefaultRegistry();
  workload::Scenario scenario = OverloadScenario(173);
  auto sharded = ShardScenario(scenario, 4);
  if (sharded == nullptr) {
    std::printf("shard replay failed; skipping table\n");
    return;
  }

  FaultInjectionEnv env;
  engine::ServiceOptions options;
  options.recommender.record_seen = false;
  options.engine.threads = 4;
  options.env = &env;
  options.overload.admission_enabled = true;
  engine::RecommendationService service(registry, options);
  if (!service.WarmStart(*sharded, 0, 1).ok()) return;

  // Calibrate, then generate a ramp whose base gap is comfortable
  // (6x service time, ~17% utilization) and whose final gap is past
  // capacity: the linear 1x->8x ramp crosses utilization 1.0 at
  // ~70% of the stream, so shedding should concentrate in the last
  // quartiles.
  profile::HumanProfile probe = scenario.end_user;
  Stopwatch watch;
  if (!service.Recommend(*sharded, 0, 1, probe).ok()) return;
  double service_us = static_cast<double>(watch.ElapsedMicros());
  for (int i = 0; i < 7; ++i) {
    profile::HumanProfile prof = scenario.end_user;
    Stopwatch w;
    if (!service.Recommend(*sharded, 0, 1, prof).ok()) return;
    service_us = 0.5 * (service_us + static_cast<double>(w.ElapsedMicros()));
  }
  service.ResetLatency();

  workload::StreamOptions stream_options;
  stream_options.mode = workload::StreamMode::kOverloadRamp;
  stream_options.reads = 400;
  stream_options.commits = 0;
  stream_options.population = 8;
  stream_options.mean_gap_us = 6.0 * service_us;
  stream_options.overload_factor = 8.0;
  stream_options.seed = 1700;
  workload::WorkloadStream stream =
      workload::GenerateStream(scenario, stream_options);

  options.overload.admission.max_queue_us =
      static_cast<uint64_t>(8.0 * service_us);

  // Replay the stream's arrival schedule through the queue model.
  uint64_t clock_us = env.NowMicros();
  const uint64_t clock_base_us = clock_us;
  double worker_free_us = 0.0;
  size_t quartile_served[4] = {0, 0, 0, 0};
  size_t quartile_shed[4] = {0, 0, 0, 0};
  engine::ServiceOptions guarded_options = options;
  engine::RecommendationService guarded(registry, guarded_options);
  if (!guarded.WarmStart(*sharded, 0, 1).ok()) return;
  for (size_t i = 0; i < stream.events.size(); ++i) {
    const workload::StreamEvent& event = stream.events[i];
    if (event.kind != workload::StreamEvent::Kind::kRead) continue;
    const double arrival_us = static_cast<double>(event.timestamp_us);
    const double pickup_us = std::max(arrival_us, worker_free_us);
    const uint64_t target_us =
        clock_base_us + static_cast<uint64_t>(pickup_us);
    if (target_us > clock_us) {
      env.AdvanceClockMicros(target_us - clock_us);
      clock_us = target_us;
    }
    RequestBudget budget;
    budget.enqueue_us = clock_base_us + static_cast<uint64_t>(arrival_us);
    profile::HumanProfile prof = stream.users[event.user];
    auto list = guarded.Recommend(*sharded, event.before, event.after, prof,
                                  budget);
    const size_t quartile =
        std::min<size_t>(3, i * 4 / std::max<size_t>(1, stream.events.size()));
    if (list.ok()) {
      // Charge the calibrated cost, not this serve's wall clock: the
      // table is about where the ramp places sheds, and a scheduler
      // hiccup priced at wall clock would smear a burst of sheds
      // across whichever quartile it happened to land in.
      worker_free_us = pickup_us + service_us;
      ++quartile_served[quartile];
    } else {
      worker_free_us = pickup_us;
      ++quartile_shed[quartile];
    }
  }

  std::printf("%-18s %10s %10s %10s\n", "ramp quartile", "served", "shed",
              "shed %");
  for (int q = 0; q < 4; ++q) {
    const size_t total = quartile_served[q] + quartile_shed[q];
    std::printf("%-18d %10zu %10zu %9.1f%%\n", q + 1, quartile_served[q],
                quartile_shed[q],
                total == 0 ? 0.0
                           : 100.0 * static_cast<double>(quartile_shed[q]) /
                                 static_cast<double>(total));
  }
  std::printf(
      "expected shape: quartile 1 serves nearly everything; the shed "
      "fraction rises monotonically as the ramp outpaces capacity.\n");
}

// Timed section — the per-request cost of the control plane.

// One admit + release round trip on the hot path (in-flight limit
// armed, rate limit off): the overhead every admitted request pays.
void BM_AdmissionAdmit(benchmark::State& state) {
  FaultInjectionEnv env;
  AdmissionOptions options;
  options.max_in_flight = 64;
  AdmissionController admission(&env, options);
  for (auto _ : state) {
    auto ticket = admission.Admit(AdmissionLane::kBulk, {});
    benchmark::DoNotOptimize(ticket.ok());
  }
  benchmark::DoNotOptimize(admission.stats().admitted_bulk);
}
BENCHMARK(BM_AdmissionAdmit)->Unit(benchmark::kNanosecond);

// Admit with the token bucket armed: adds one clock read + refill.
void BM_AdmissionAdmitWithRateLimit(benchmark::State& state) {
  FaultInjectionEnv env;
  AdmissionOptions options;
  options.max_in_flight = 64;
  options.bulk_rate_per_sec = 1e9;  // never the binding constraint
  AdmissionController admission(&env, options);
  for (auto _ : state) {
    auto ticket = admission.Admit(AdmissionLane::kBulk, {});
    benchmark::DoNotOptimize(ticket.ok());
  }
}
BENCHMARK(BM_AdmissionAdmitWithRateLimit)->Unit(benchmark::kNanosecond);

// Closed-breaker Allow + RecordSuccess: the overhead every commit pays
// while things are healthy.
void BM_BreakerAllow(benchmark::State& state) {
  FaultInjectionEnv env;
  CircuitBreaker breaker(&env, BreakerOptions{});
  for (auto _ : state) {
    const Status allowed = breaker.Allow();
    benchmark::DoNotOptimize(allowed.ok());
    breaker.RecordSuccess();
  }
}
BENCHMARK(BM_BreakerAllow)->Unit(benchmark::kNanosecond);

// Deadline check at a stage boundary: the cost each pipeline stage
// adds per request (finite deadline, not expired).
void BM_DeadlineCheck(benchmark::State& state) {
  FaultInjectionEnv env;
  const Deadline deadline = Deadline::After(&env, 1'000'000'000);
  for (auto _ : state) {
    const Status alive = deadline.Check("bench");
    benchmark::DoNotOptimize(alive.ok());
  }
}
BENCHMARK(BM_DeadlineCheck)->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace evorec::bench

int main(int argc, char** argv) {
  evorec::bench::PrintOverloadTable();
  evorec::bench::PrintRampTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
