// E7 — group fairness (paper §III.d): a package can leave one member
// least-satisfied by every item; fairness-aware selection should lift
// the minimum satisfaction at a small cost to the mean. Sweeps group
// size × interest overlap × selection strategy.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace evorec::bench {
namespace {

struct GroupRun {
  recommend::FairnessDiagnostics diagnostics;
  double mean = 0.0;
};

void PrintFairnessSweep() {
  PrintHeader("E7 — group package fairness",
              "recommend measures both strongly related and fair; avoid a "
              "member that is least satisfied for all measures");
  TablePrinter table({"members", "overlap", "strategy", "mean_sat",
                      "min_sat", "gini", "always_least"});

  for (size_t members : {3, 5, 8}) {
    for (double overlap : {0.0, 0.3, 0.7}) {
      // Build scenario + group once per cell.
      workload::ScenarioScale scale;
      scale.classes = 60;
      scale.instances = 700;
      scale.edges = 1200;
      scale.versions = 2;
      scale.operations = 250;
      workload::Scenario scenario = workload::MakeDbpediaLike(
          41 + members * 7 + static_cast<uint64_t>(overlap * 10), scale);
      auto ctx = measures::EvolutionContext::FromVersions(
          *scenario.vkb, scenario.vkb->head() - 1, scenario.vkb->head());
      if (!ctx.ok()) continue;
      const auto head = scenario.vkb->Snapshot(scenario.vkb->head());
      const schema::SchemaView view = schema::SchemaView::Build(**head);
      Rng rng(97 + members);
      workload::ProfileGenOptions profile_options;
      profile::Group group = workload::GenerateGroup(
          "bench", members, overlap, view, profile_options, rng);

      measures::MeasureRegistry registry = measures::DefaultRegistry();
      recommend::CandidateOptions candidate_options;
      candidate_options.max_regions = 8;
      auto pool =
          recommend::GenerateCandidates(registry, *ctx, candidate_options);
      if (!pool.ok()) continue;
      recommend::RelatednessScorer scorer(*ctx, {});
      const recommend::UtilityMatrix utilities =
          recommend::BuildUtilityMatrix(*pool, group, scorer);

      struct Strategy {
        const char* name;
        std::vector<size_t> selection;
      };
      std::vector<Strategy> strategies;
      strategies.push_back(
          {"average", recommend::SelectByAggregation(
                          utilities, 5, recommend::GroupAggregation::
                                            kAverage)});
      strategies.push_back(
          {"least_misery",
           recommend::SelectByAggregation(
               utilities, 5, recommend::GroupAggregation::kLeastMisery)});
      strategies.push_back(
          {"fair_package", recommend::SelectFairPackage(utilities, 5)});

      for (const Strategy& strategy : strategies) {
        const auto diag =
            recommend::EvaluatePackage(utilities, strategy.selection);
        table.AddRow({TablePrinter::Cell(members),
                      TablePrinter::Cell(overlap, 1), strategy.name,
                      TablePrinter::Cell(diag.mean_satisfaction, 3),
                      TablePrinter::Cell(diag.min_satisfaction, 3),
                      TablePrinter::Cell(diag.gini, 3),
                      diag.has_always_least_satisfied_member ? "YES" : "no"});
      }
    }
  }
  table.Print(std::cout);
  std::printf(
      "expected shape: fair_package has the highest min_sat and lowest "
      "gini in every cell, at a small mean_sat cost vs average; low "
      "overlap widens the gap.\n");
}

void BM_FairPackageSelection(benchmark::State& state) {
  const size_t members = static_cast<size_t>(state.range(0));
  Rng rng(5);
  recommend::UtilityMatrix utilities(members, std::vector<double>(64));
  for (auto& row : utilities) {
    for (double& u : row) u = rng.UniformDouble();
  }
  for (auto _ : state) {
    auto selection = recommend::SelectFairPackage(utilities, 5);
    benchmark::DoNotOptimize(selection.data());
  }
}
BENCHMARK(BM_FairPackageSelection)->Arg(3)->Arg(8)->Arg(20);

void BM_AggregationSelection(benchmark::State& state) {
  Rng rng(5);
  recommend::UtilityMatrix utilities(8, std::vector<double>(64));
  for (auto& row : utilities) {
    for (double& u : row) u = rng.UniformDouble();
  }
  for (auto _ : state) {
    auto selection = recommend::SelectByAggregation(
        utilities, 5, recommend::GroupAggregation::kLeastMisery);
    benchmark::DoNotOptimize(selection.data());
  }
}
BENCHMARK(BM_AggregationSelection);

}  // namespace
}  // namespace evorec::bench

int main(int argc, char** argv) {
  evorec::bench::PrintFairnessSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
