// E2 — neighborhood change counts (paper §II.b).
// Plants churn on the *neighbors* of a probe class, never on the probe
// itself. Per-class counting scores the probe 0; the neighborhood
// measure ranks it near the top — the topology-awareness the paper
// argues for.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace evorec::bench {
namespace {

// Builds a KB where class 0 (probe) is property-connected to a ring of
// neighbor classes, and all churn lands on the neighbors.
struct ProbeWorkload {
  rdf::KnowledgeBase before;
  rdf::KnowledgeBase after;
  rdf::TermId probe;
  std::vector<rdf::TermId> neighbors;
};

ProbeWorkload MakeProbeWorkload(size_t neighbor_count, size_t churn_per_n) {
  ProbeWorkload w;
  w.probe = w.before.DeclareClass("http://x/Probe");
  const rdf::Vocabulary& voc = w.before.vocabulary();
  for (size_t i = 0; i < neighbor_count; ++i) {
    const std::string iri = "http://x/N" + std::to_string(i);
    const rdf::TermId n = w.before.DeclareClass(iri);
    w.neighbors.push_back(n);
    // Property linking probe ↔ neighbor (domain/range adjacency).
    (void)w.before.DeclareProperty("http://x/link" + std::to_string(i),
                                   "http://x/Probe", iri);
  }
  // A few decoy classes with light churn to make ranking non-trivial.
  for (size_t i = 0; i < 10; ++i) {
    w.before.DeclareClass("http://x/Decoy" + std::to_string(i));
  }
  w.after = w.before;
  for (size_t i = 0; i < neighbor_count; ++i) {
    for (size_t c = 0; c < churn_per_n; ++c) {
      w.after.store().Add(
          {w.after.dictionary().InternIri("http://x/N" + std::to_string(i) +
                                          "/inst" + std::to_string(c)),
           voc.rdf_type, w.neighbors[i]});
    }
  }
  // Light decoy churn: one instance each.
  for (size_t i = 0; i < 10; ++i) {
    w.after.store().Add(
        {w.after.dictionary().InternIri("http://x/Decoy" + std::to_string(i) +
                                        "/inst"),
         voc.rdf_type,
         w.after.dictionary().InternIri("http://x/Decoy" +
                                        std::to_string(i))});
  }
  return w;
}

size_t RankOf(const measures::MeasureReport& report, rdf::TermId term) {
  const auto sorted = report.Sorted();
  for (size_t i = 0; i < sorted.scores().size(); ++i) {
    if (sorted.scores()[i].term == term) return i + 1;
  }
  return sorted.scores().size() + 1;
}

void PrintNeighborhoodTable() {
  PrintHeader("E2 — neighborhood change counts",
              "changes in N(n) expose topology-level churn that per-class "
              "counting misses");
  TablePrinter table({"neighbors", "churn/n", "probe_direct", "probe_nbhd",
                      "rank_direct", "rank_nbhd"});
  for (size_t neighbors : {2, 4, 8}) {
    for (size_t churn : {5, 20}) {
      ProbeWorkload w = MakeProbeWorkload(neighbors, churn);
      auto ctx = measures::EvolutionContext::Build(w.before, w.after);
      if (!ctx.ok()) continue;
      measures::ClassChangeCountMeasure direct;
      measures::NeighborhoodChangeCountMeasure neighborhood;
      auto direct_report = direct.Compute(*ctx);
      auto neighborhood_report = neighborhood.Compute(*ctx);
      if (!direct_report.ok() || !neighborhood_report.ok()) continue;
      table.AddRow({TablePrinter::Cell(neighbors),
                    TablePrinter::Cell(churn),
                    TablePrinter::Cell(direct_report->ScoreOf(w.probe), 0),
                    TablePrinter::Cell(
                        neighborhood_report->ScoreOf(w.probe), 0),
                    TablePrinter::Cell(RankOf(*direct_report, w.probe)),
                    TablePrinter::Cell(
                        RankOf(*neighborhood_report, w.probe))});
    }
  }
  table.Print(std::cout);
  std::printf(
      "expected shape: probe_direct = 0 yet probe_nbhd grows with "
      "neighbors x churn; rank_nbhd << rank_direct.\n");
}

void BM_NeighborhoodMeasure(benchmark::State& state) {
  TwoVersionWorkload w = MakeTwoVersionWorkload(
      static_cast<size_t>(state.range(0)), 2000, 4000, 400, /*seed=*/7);
  auto ctx = measures::EvolutionContext::Build(w.generated.kb, w.after);
  measures::NeighborhoodChangeCountMeasure measure;
  for (auto _ : state) {
    auto report = measure.Compute(*ctx);
    benchmark::DoNotOptimize(report.ok());
  }
}
BENCHMARK(BM_NeighborhoodMeasure)->Arg(100)->Arg(400);

}  // namespace
}  // namespace evorec::bench

int main(int argc, char** argv) {
  evorec::bench::PrintNeighborhoodTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
