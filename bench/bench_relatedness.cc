// E5 — relatedness (paper §III.a): users should be shown the evolved
// parts most relevant to their interests. Profiles are planted on a
// focal subtree; churn is planted on that subtree plus elsewhere.
// Metric: precision@k of the recommended candidates' focus regions
// against the planted subtree, sweeping the interest-propagation decay
// (ablation: decay 0 disables hierarchy expansion).

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace evorec::bench {
namespace {

struct RelatednessRun {
  double precision = 0.0;
  double mean_score_on_focal = 0.0;
  double mean_score_off_focal = 0.0;
};

RelatednessRun Run(double decay, size_t hops, uint64_t seed) {
  workload::ScenarioScale scale;
  scale.classes = 80;
  scale.properties = 30;
  scale.instances = 1200;
  scale.edges = 2200;
  scale.versions = 2;
  scale.operations = 350;
  workload::Scenario scenario = workload::MakeDbpediaLike(seed, scale);
  auto ctx = measures::EvolutionContext::FromVersions(
      *scenario.vkb, scenario.vkb->head() - 1, scenario.vkb->head());
  if (!ctx.ok()) return {};

  // Plant the user's interests exactly on a hot class and its subtree,
  // so ground truth = candidates focused inside that region.
  const auto head = scenario.vkb->Snapshot(scenario.vkb->head());
  const schema::SchemaView view = schema::SchemaView::Build(**head);
  if (scenario.hot_classes.empty()) return {};
  const rdf::TermId focal = scenario.hot_classes[0];
  profile::HumanProfile user("bench_user");
  user.SetInterest(focal, 1.0);

  measures::MeasureRegistry registry = measures::DefaultRegistry();
  recommend::CandidateOptions candidate_options;
  candidate_options.max_regions = 8;
  auto pool = recommend::GenerateCandidates(registry, *ctx,
                                            candidate_options);
  if (!pool.ok()) return {};

  recommend::RelatednessOptions options;
  options.propagation_decay = decay;
  options.propagation_hops = hops;
  recommend::RelatednessScorer scorer(*ctx, options);

  // Score every region-focused candidate; measure separation between
  // focal-region candidates and the rest.
  std::vector<double> focal_scores;
  std::vector<double> other_scores;
  std::vector<std::pair<double, bool>> ranked;  // (score, is_focal)
  for (const auto& candidate : *pool) {
    if (candidate.focus == rdf::kAnyTerm) continue;
    const double score = scorer.Score(user, candidate);
    const bool is_focal =
        candidate.focus == focal ||
        view.hierarchy().IsSubclassOf(candidate.focus, focal) ||
        view.hierarchy().IsSubclassOf(focal, candidate.focus);
    (is_focal ? focal_scores : other_scores).push_back(score);
    ranked.emplace_back(score, is_focal);
  }
  if (ranked.empty()) return {};
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  const size_t k = std::min<size_t>(3, ranked.size());
  size_t hits = 0;
  for (size_t i = 0; i < k; ++i) {
    if (ranked[i].second) ++hits;
  }
  RelatednessRun run;
  run.precision = static_cast<double>(hits) / static_cast<double>(k);
  run.mean_score_on_focal = Mean(focal_scores);
  run.mean_score_off_focal = Mean(other_scores);
  return run;
}

void PrintRelatednessTable() {
  PrintHeader("E5 — relatedness with interest propagation",
              "retrieve only the evolved parts most relevant to the "
              "user's interests");
  TablePrinter table({"decay", "hops", "p@3(region)", "score_focal",
                      "score_other"});
  for (double decay : {0.0, 0.3, 0.5, 0.8}) {
    const size_t hops = decay == 0.0 ? 0 : 2;
    // Average over seeds for stability.
    std::vector<double> p, on, off;
    for (uint64_t seed : {7ull, 19ull, 31ull}) {
      const RelatednessRun run = Run(decay, hops, seed);
      p.push_back(run.precision);
      on.push_back(run.mean_score_on_focal);
      off.push_back(run.mean_score_off_focal);
    }
    table.AddRow({TablePrinter::Cell(decay, 1), TablePrinter::Cell(hops),
                  TablePrinter::Cell(Mean(p), 2),
                  TablePrinter::Cell(Mean(on), 3),
                  TablePrinter::Cell(Mean(off), 3)});
  }
  table.Print(std::cout);
  std::printf(
      "expected shape: score_focal >> score_other at every decay; "
      "propagation (decay>0) lifts p@3 over the no-propagation "
      "ablation.\n");
}

void BM_RelatednessScoring(benchmark::State& state) {
  workload::ScenarioScale scale;
  scale.classes = 80;
  scale.instances = 800;
  scale.edges = 1500;
  scale.versions = 1;
  scale.operations = 200;
  workload::Scenario scenario = workload::MakeDbpediaLike(3, scale);
  auto ctx = measures::EvolutionContext::FromVersions(*scenario.vkb, 0, 1);
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  auto pool = recommend::GenerateCandidates(registry, *ctx, {});
  recommend::RelatednessScorer scorer(*ctx, {});
  for (auto _ : state) {
    double total = 0.0;
    for (const auto& candidate : *pool) {
      total += scorer.Score(scenario.end_user, candidate);
    }
    benchmark::DoNotOptimize(total);
  }
  state.counters["candidates"] = static_cast<double>(pool->size());
}
BENCHMARK(BM_RelatednessScoring);

}  // namespace
}  // namespace evorec::bench

int main(int argc, char** argv) {
  evorec::bench::PrintRelatednessTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
