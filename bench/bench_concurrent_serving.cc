// E15 — concurrent serving over a sharded, segmented KB: reader
// threads keep answering RecommendBatch requests about a pinned
// version pair at full fan-out while a committer lands new versions
// through the same service. The segmented store makes every snapshot
// a segment-list share (never a triple copy), so readers never block
// on the writer; the figure table records sustained req/s during the
// commit storm, per-commit latency (commit + incremental engine
// refresh), and the zero-flat-copy counter on the serving read path,
// at 1/2/4/8 shards. The timing section is the committed BENCH_*
// evidence.
//
// Honesty note: on a single-core host the shard sweep measures
// bookkeeping overhead, not parallel fan-out — the figure printer
// reports the worker count so a reader can tell which regime a
// snapshot was recorded in.

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "version/sharded_kb.h"

namespace evorec::bench {
namespace {

workload::Scenario ConcurrentScenario(uint64_t seed = 151) {
  // Moderate serving scale: big enough that context builds dominate a
  // cold request, small enough that the commit storm finishes quickly.
  workload::ScenarioScale scale;
  scale.classes = 80;
  scale.properties = 28;
  scale.instances = 1200;
  scale.edges = 2200;
  scale.versions = 2;
  scale.operations = 300;
  return workload::MakeDbpediaLike(seed, scale);
}

// Rebuilds the scenario's history as a sharded KB sharing the
// scenario dictionary.
std::unique_ptr<version::ShardedKnowledgeBase> ShardScenario(
    const workload::Scenario& scenario, size_t shards) {
  auto base = scenario.vkb->Snapshot(0);
  if (!base.ok()) return nullptr;
  auto sharded = std::make_unique<version::ShardedKnowledgeBase>(
      version::ShardedKnowledgeBase::Options{.shards = shards}, **base);
  for (version::VersionId v = 1; v <= scenario.vkb->head(); ++v) {
    auto cs = scenario.vkb->Changes(v);
    if (!cs.ok()) return nullptr;
    if (!sharded->Commit(std::move(cs).value(), "replay", "seed", v).ok()) {
      return nullptr;
    }
  }
  return sharded;
}

// Commit payloads from the scenario's own vocabulary (the shared
// dictionary is never touched — the sharded KB's intern-before-commit
// contract). Even entries add a block of triples, odd entries retract
// it again, so the KB stays bounded under an arbitrarily long storm.
std::vector<version::ChangeSet> CommitStorm(
    const workload::Scenario& scenario, size_t count) {
  std::vector<version::ChangeSet> storm(count);
  for (size_t c = 0; c < count; ++c) {
    std::vector<rdf::Triple> block;
    const size_t wave = c / 2;
    for (size_t i = 0; i < 16; ++i) {
      block.push_back(
          {scenario.classes[(wave * 11 + i) % scenario.classes.size()],
           scenario.properties[(wave + i) % scenario.properties.size()],
           scenario.classes[(wave * 5 + i * 3) % scenario.classes.size()]});
    }
    if (c % 2 == 0) {
      storm[c].additions = std::move(block);
    } else {
      storm[c].removals = std::move(block);
    }
  }
  return storm;
}

std::vector<profile::HumanProfile> CloneUsers(
    const profile::HumanProfile& seed_user, size_t n) {
  std::vector<profile::HumanProfile> users;
  users.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    profile::HumanProfile user = seed_user;
    user.set_id("user-" + std::to_string(i));
    users.push_back(std::move(user));
  }
  return users;
}

// The serving read diet over one pinned union snapshot; returns the
// whole-store flat-copy counter, which the concurrency contract pins
// at zero (snapshots are segment lists, never copies).
uint64_t ProbeFlatCopies(const version::ShardedKnowledgeBase& sharded) {
  auto snapshot = sharded.SharedSnapshot(sharded.head());
  if (!snapshot.ok()) return ~0ull;
  const rdf::TripleStore& store = (*snapshot)->store();
  (void)store.Contains({0, 0, 0});
  (void)store.Match({1, rdf::kAnyTerm, rdf::kAnyTerm});
  size_t n = 0;
  store.ScanT({rdf::kAnyTerm, rdf::kAnyTerm, rdf::kAnyTerm},
              [&](const rdf::Triple&) {
                ++n;
                return true;
              });
  benchmark::DoNotOptimize(n);
  return store.stats().materializations;
}

struct StormResult {
  size_t requests = 0;
  double elapsed_s = 0.0;
  double commit_ms_mean = 0.0;
  double commit_ms_max = 0.0;
  bool ok = false;
};

// Races kReaders batch-serving threads at (0,1) against one committer
// landing `storm` through the service (commit + engine refresh).
StormResult RunStorm(engine::RecommendationService& service,
                     version::ShardedKnowledgeBase& sharded,
                     const workload::Scenario& scenario,
                     std::vector<version::ChangeSet> storm, size_t readers,
                     size_t users_per_batch, size_t max_rounds) {
  StormResult result;
  std::atomic<bool> done{false};
  std::atomic<size_t> requests{0};
  std::atomic<int> failures{0};
  std::vector<double> commit_ms(storm.size(), 0.0);
  const version::VersionId base_head = sharded.head();

  Stopwatch window;
  std::thread committer([&] {
    for (size_t c = 0; c < storm.size(); ++c) {
      Stopwatch latency;
      auto id = service.Commit(sharded, std::move(storm[c]), "committer",
                               "storm " + std::to_string(c),
                               base_head + c + 1);
      commit_ms[c] = latency.ElapsedMillis();
      if (!id.ok()) failures.fetch_add(1);
    }
    done.store(true);
  });
  {
    std::vector<std::thread> pool;
    pool.reserve(readers);
    for (size_t r = 0; r < readers; ++r) {
      pool.emplace_back([&] {
        std::vector<profile::HumanProfile> users =
            CloneUsers(scenario.end_user, users_per_batch);
        std::vector<profile::HumanProfile*> pointers;
        for (profile::HumanProfile& user : users) pointers.push_back(&user);
        size_t rounds = 0;
        while (!done.load() && rounds < max_rounds) {
          auto batch = service.RecommendBatch(sharded, 0, 1, pointers);
          if (!batch.ok()) {
            failures.fetch_add(1);
            break;
          }
          requests.fetch_add(pointers.size());
          ++rounds;
        }
      });
    }
    for (std::thread& t : pool) t.join();
    committer.join();
  }
  result.elapsed_s = window.ElapsedMillis() / 1000.0;
  result.requests = requests.load();
  for (double ms : commit_ms) {
    result.commit_ms_mean += ms;
    result.commit_ms_max = std::max(result.commit_ms_max, ms);
  }
  result.commit_ms_mean /= storm.empty() ? 1.0 : commit_ms.size();
  result.ok = failures.load() == 0;
  return result;
}

void PrintConcurrentServingTable() {
  PrintHeader(
      "E15 — serving at full fan-out while commits land (sharded KB)",
      "readers pin segment-list snapshots and never block on the writer: "
      "sustained req/s under a commit storm, bounded commit latency, zero "
      "whole-store copies on the serving path");

  const measures::MeasureRegistry registry = measures::DefaultRegistry();
  workload::Scenario scenario = ConcurrentScenario();
  std::printf("worker threads on this host: %zu%s\n",
              ThreadPool::DefaultThreadCount(),
              ThreadPool::DefaultThreadCount() == 1
                  ? " (single core: the shard sweep measures overhead, not "
                    "parallel fan-out — rerun on a multicore box for the "
                    "scaling figure)"
                  : "");

  TablePrinter table({"shards", "reqs", "req_s", "commits", "commit_ms_mean",
                      "commit_ms_max", "flat_copies"});
  for (size_t shards : {1u, 2u, 4u, 8u}) {
    auto sharded = ShardScenario(scenario, shards);
    if (sharded == nullptr) continue;

    engine::ServiceOptions options;
    options.recommender.record_seen = false;
    options.engine.threads = 4;
    engine::RecommendationService service(registry, options);
    if (!service.WarmStart(*sharded, 0, 1).ok()) continue;

    StormResult result =
        RunStorm(service, *sharded, scenario, CommitStorm(scenario, 8),
                 /*readers=*/4, /*users_per_batch=*/8, /*max_rounds=*/400);
    if (!result.ok) continue;
    const uint64_t flat_copies = ProbeFlatCopies(*sharded);
    table.AddRow(
        {TablePrinter::Cell(shards), TablePrinter::Cell(result.requests),
         TablePrinter::Cell(static_cast<double>(result.requests) /
                                result.elapsed_s,
                            0),
         TablePrinter::Cell(static_cast<size_t>(8)),
         TablePrinter::Cell(result.commit_ms_mean, 2),
         TablePrinter::Cell(result.commit_ms_max, 2),
         TablePrinter::Cell(static_cast<size_t>(flat_copies))});
  }
  table.Print(std::cout);
  std::printf(
      "expected shape: req_s stays within a small factor of the idle-store "
      "rate for every shard count (reads pin snapshots, commits never stall "
      "them), commit_ms stays bounded (incremental refresh), flat_copies "
      "is 0 — the serving path never materialises a whole-store copy.\n");
}

// Timing section — the committed BENCH_* evidence.

// One warm 8-user batch served while a committer thread lands commits
// in a loop: the sustained-serving rate under write pressure.
void BM_BatchDuringCommits(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  const measures::MeasureRegistry registry = measures::DefaultRegistry();
  workload::Scenario scenario = ConcurrentScenario();
  auto sharded = ShardScenario(scenario, shards);
  if (sharded == nullptr) {
    state.SkipWithError("shard replay failed");
    return;
  }
  engine::ServiceOptions options;
  options.recommender.record_seen = false;
  options.engine.threads = 4;
  engine::RecommendationService service(registry, options);
  if (!service.WarmStart(*sharded, 0, 1).ok()) {
    state.SkipWithError("warm start failed");
    return;
  }
  std::vector<profile::HumanProfile> users = CloneUsers(scenario.end_user, 8);
  std::vector<profile::HumanProfile*> pointers;
  for (profile::HumanProfile& user : users) pointers.push_back(&user);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> commits{0};
  std::thread committer([&] {
    std::vector<version::ChangeSet> storm = CommitStorm(scenario, 64);
    size_t c = 0;
    while (!stop.load()) {
      version::ChangeSet cs = storm[c % storm.size()];
      if (!service.Commit(*sharded, std::move(cs), "committer", "storm",
                          sharded->head() + 1)
               .ok()) {
        break;
      }
      commits.fetch_add(1);
      ++c;
    }
  });
  for (auto _ : state) {
    auto batch = service.RecommendBatch(*sharded, 0, 1, pointers);
    if (!batch.ok()) state.SkipWithError("batch failed");
    benchmark::DoNotOptimize(batch.ok());
  }
  stop.store(true);
  committer.join();
  state.counters["req_per_s"] = benchmark::Counter(
      8.0 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["commits_landed"] =
      static_cast<double>(commits.load());
}
BENCHMARK(BM_BatchDuringCommits)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// One commit (split + per-shard land + union splice + engine refresh)
// while reader threads keep serving: the bounded-commit-latency claim.
void BM_CommitUnderReadLoad(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  const measures::MeasureRegistry registry = measures::DefaultRegistry();
  workload::Scenario scenario = ConcurrentScenario();
  auto sharded = ShardScenario(scenario, shards);
  if (sharded == nullptr) {
    state.SkipWithError("shard replay failed");
    return;
  }
  engine::ServiceOptions options;
  options.recommender.record_seen = false;
  options.engine.threads = 4;
  engine::RecommendationService service(registry, options);
  if (!service.WarmStart(*sharded, 0, 1).ok()) {
    state.SkipWithError("warm start failed");
    return;
  }

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    std::vector<profile::HumanProfile> users =
        CloneUsers(scenario.end_user, 4);
    std::vector<profile::HumanProfile*> pointers;
    for (profile::HumanProfile& user : users) pointers.push_back(&user);
    while (!stop.load()) {
      auto batch = service.RecommendBatch(*sharded, 0, 1, pointers);
      benchmark::DoNotOptimize(batch.ok());
    }
  });
  std::vector<version::ChangeSet> storm = CommitStorm(scenario, 64);
  size_t c = 0;
  for (auto _ : state) {
    version::ChangeSet cs = storm[c % storm.size()];
    auto id = service.Commit(*sharded, std::move(cs), "committer", "bench",
                             sharded->head() + 1);
    if (!id.ok()) state.SkipWithError("commit failed");
    ++c;
  }
  stop.store(true);
  reader.join();
}
BENCHMARK(BM_CommitUnderReadLoad)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Snapshot pin cost: O(total segment count) pointer splicing,
// independent of the triple count — the "snapshot = segment list, not
// copy" claim in one number.
void BM_SnapshotPin(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  workload::Scenario scenario = ConcurrentScenario();
  auto sharded = ShardScenario(scenario, shards);
  if (sharded == nullptr) {
    state.SkipWithError("shard replay failed");
    return;
  }
  for (auto _ : state) {
    auto snapshot = sharded->SharedSnapshot(sharded->head());
    if (!snapshot.ok()) state.SkipWithError("snapshot failed");
    benchmark::DoNotOptimize((*snapshot)->size());
  }
}
BENCHMARK(BM_SnapshotPin)->Arg(1)->Arg(8)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace evorec::bench

int main(int argc, char** argv) {
  evorec::bench::PrintConcurrentServingTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
