// E12 — durable versioned-KB storage (storage layer): compact binary
// snapshots + delta-compressed commit log. The paper's evaluation
// workflow assumes long-lived KBs whose history persists across
// sessions; before this layer a cold start had to *regenerate* the
// whole synthetic workload. The figure table records snapshot size
// vs the equivalent N-Triples text (the ≤0.5× claim) and
// cold-start-from-disk vs regenerate-in-memory (the ≥5× claim); the
// timing section is the committed BENCH_* evidence.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "bench_common.h"

namespace evorec::bench {
namespace {

std::string TempPath(const std::string& name) {
  const char* tmpdir = std::getenv("TMPDIR");
  return std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
         "/evorec_bench_persist_" + name;
}

struct PersistenceScale {
  size_t classes = 120;
  size_t instances = 4000;
  size_t edges = 8000;
  uint32_t versions = 4;
  size_t operations = 400;
};

// Regenerates the whole workload from its seed: schema + instances +
// every evolution transition, committed into a fresh versioned KB.
// This is exactly what a cold start had to do before the storage
// layer existed, so it is the baseline the ≥5× claim is against.
version::VersionedKnowledgeBase Regenerate(const PersistenceScale& scale,
                                           uint64_t seed,
                                           storage::CommitLog* log = nullptr) {
  workload::SchemaGenOptions schema_options;
  schema_options.class_count = scale.classes;
  schema_options.property_count = scale.classes / 3 + 5;
  schema_options.seed = seed;
  workload::GeneratedSchema generated =
      workload::GenerateSchema(schema_options);
  workload::InstanceGenOptions instance_options;
  instance_options.instance_count = scale.instances;
  instance_options.edge_count = scale.edges;
  instance_options.seed = seed + 1;
  workload::PopulateInstances(generated, instance_options);

  version::VersionedKnowledgeBase vkb(version::ArchivePolicy::kDeltaChain,
                                      std::move(generated.kb));
  if (log != nullptr) vkb.AttachCommitLog(log);
  for (uint32_t v = 0; v < scale.versions; ++v) {
    auto head = vkb.Snapshot(vkb.head());
    if (!head.ok()) break;
    workload::EvolutionOptions evolution_options;
    evolution_options.operations = scale.operations;
    evolution_options.epoch = v + 1;
    evolution_options.seed = seed + 10 + v;
    workload::EvolutionOutcome outcome = workload::GenerateEvolution(
        **head, vkb.dictionary(), evolution_options);
    (void)vkb.Commit(std::move(outcome.changes), "gen",
                     "transition " + std::to_string(v + 1));
  }
  return vkb;
}

// Persists `vkb` as the everyday recovery pair: a snapshot two
// versions behind the head plus the full commit log, so recovery
// exercises both the bulk snapshot load and the log tail replay.
struct DurablePair {
  std::string snapshot_path;
  std::string log_path;
};

DurablePair Persist(const PersistenceScale& scale, uint64_t seed,
                    const std::string& tag) {
  DurablePair pair{TempPath(tag + ".evsnap"), TempPath(tag + ".evlog")};
  std::remove(pair.log_path.c_str());
  auto log = storage::CommitLog::Open(pair.log_path);
  if (!log.ok()) return pair;
  version::VersionedKnowledgeBase vkb = Regenerate(scale, seed, &*log);
  const version::VersionId snap_at =
      vkb.head() >= 2 ? vkb.head() - 2 : vkb.head();
  (void)version::SaveVersionSnapshot(vkb, snap_at, pair.snapshot_path);
  (void)log->Sync();
  return pair;
}

size_t FileSize(const std::string& path) {
  auto bytes = ReadFileToString(path);
  return bytes.ok() ? bytes->size() : 0;
}

void PrintPersistenceTable() {
  PrintHeader(
      "E12 — durable storage: snapshot size + cold start from disk",
      "a compact binary snapshot + commit log turns cold start from "
      "'regenerate + recompute' into 'load + serve' (>=5x) at <=0.5x "
      "the equivalent N-Triples text");

  TablePrinter table({"triples", "nt_kb", "snap_kb", "B_per_triple",
                      "snap_nt_ratio", "save_ms", "load_ms", "regen_ms",
                      "cold_ms", "speedup"});
  const PersistenceScale scales[] = {
      {60, 1000, 2000, 4, 150},
      {120, 4000, 8000, 4, 400},
      {200, 12000, 24000, 4, 700},
      {260, 30000, 60000, 4, 1000},
  };
  for (const PersistenceScale& scale : scales) {
    const uint64_t seed = 42;
    version::VersionedKnowledgeBase vkb = Regenerate(scale, seed);
    auto head_kb = vkb.Snapshot(vkb.head());
    if (!head_kb.ok()) continue;
    const size_t triples = (*head_kb)->size();
    const std::string ntriples =
        rdf::WriteNTriples((*head_kb)->store(), (*head_kb)->dictionary());

    const std::string snapshot_path = TempPath("table.evsnap");
    Stopwatch save_timer;
    if (!version::SaveVersionSnapshot(vkb, vkb.head(), snapshot_path).ok()) {
      continue;
    }
    const double save_ms = save_timer.ElapsedMillis();
    const size_t snapshot_bytes = FileSize(snapshot_path);

    Stopwatch load_timer;
    auto loaded = storage::LoadSnapshot(snapshot_path);
    const double load_ms = load_timer.ElapsedMillis();
    if (!loaded.ok()) continue;
    benchmark::DoNotOptimize(loaded->store.size());

    Stopwatch regen_timer;
    version::VersionedKnowledgeBase regenerated = Regenerate(scale, seed);
    const double regen_ms = regen_timer.ElapsedMillis();
    benchmark::DoNotOptimize(regenerated.head());

    const DurablePair pair = Persist(scale, seed, "table_cold");
    Stopwatch cold_timer;
    auto recovered =
        version::RecoverFromDisk(pair.snapshot_path, pair.log_path);
    double cold_ms = cold_timer.ElapsedMillis();
    if (!recovered.ok()) continue;
    benchmark::DoNotOptimize(recovered->vkb->head());

    table.AddRow(
        {TablePrinter::Cell(triples),
         TablePrinter::Cell(ntriples.size() / 1024.0, 0),
         TablePrinter::Cell(snapshot_bytes / 1024.0, 0),
         TablePrinter::Cell(
             static_cast<double>(snapshot_bytes) /
                 static_cast<double>(triples == 0 ? 1 : triples),
             1),
         TablePrinter::Cell(static_cast<double>(snapshot_bytes) /
                                static_cast<double>(ntriples.size()),
                            3),
         TablePrinter::Cell(save_ms, 2), TablePrinter::Cell(load_ms, 2),
         TablePrinter::Cell(regen_ms, 1), TablePrinter::Cell(cold_ms, 2),
         TablePrinter::Cell(regen_ms / cold_ms, 1)});
    std::remove(snapshot_path.c_str());
    std::remove(pair.snapshot_path.c_str());
    std::remove(pair.log_path.c_str());
  }
  table.Print(std::cout);
  std::printf(
      "expected shape: B_per_triple is a handful of bytes (dictionary "
      "text amortised over the whole store), snap_nt_ratio well under "
      "0.5, and speedup = regen_ms/cold_ms >= 5 and growing with "
      "scale — loading is linear in bytes, regeneration pays the full "
      "generator + commit + hash pipeline again.\n");
}

// Timing section — the committed BENCH_* evidence for the E12 claims.

constexpr PersistenceScale kTimedScale = {200, 12000, 24000, 4, 700};
constexpr uint64_t kTimedSeed = 42;

// Snapshot save throughput (encode + atomic write), with the size
// evidence attached as counters.
void BM_SaveSnapshot(benchmark::State& state) {
  version::VersionedKnowledgeBase vkb = Regenerate(kTimedScale, kTimedSeed);
  auto head_kb = vkb.Snapshot(vkb.head());
  if (!head_kb.ok()) {
    state.SkipWithError("workload failed");
    return;
  }
  const std::string path = TempPath("bm_save.evsnap");
  for (auto _ : state) {
    if (!version::SaveVersionSnapshot(vkb, vkb.head(), path).ok()) {
      state.SkipWithError("save failed");
      break;
    }
  }
  const size_t triples = (*head_kb)->size();
  const std::string ntriples =
      rdf::WriteNTriples((*head_kb)->store(), (*head_kb)->dictionary());
  const size_t snapshot_bytes = FileSize(path);
  state.counters["triples_per_s"] = benchmark::Counter(
      static_cast<double>(triples) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["snapshot_bytes"] =
      static_cast<double>(snapshot_bytes);
  state.counters["ntriples_bytes"] =
      static_cast<double>(ntriples.size());
  state.counters["bytes_per_triple"] =
      static_cast<double>(snapshot_bytes) /
      static_cast<double>(triples == 0 ? 1 : triples);
  std::remove(path.c_str());
}
BENCHMARK(BM_SaveSnapshot)->Unit(benchmark::kMillisecond);

// Snapshot load throughput (read + decode + bulk sorted-load).
void BM_LoadSnapshot(benchmark::State& state) {
  version::VersionedKnowledgeBase vkb = Regenerate(kTimedScale, kTimedSeed);
  const std::string path = TempPath("bm_load.evsnap");
  if (!version::SaveVersionSnapshot(vkb, vkb.head(), path).ok()) {
    state.SkipWithError("save failed");
    return;
  }
  size_t triples = 0;
  for (auto _ : state) {
    auto loaded = storage::LoadSnapshot(path);
    if (!loaded.ok()) {
      state.SkipWithError("load failed");
      break;
    }
    triples = loaded->store.size();
    benchmark::DoNotOptimize(triples);
  }
  state.counters["triples_per_s"] = benchmark::Counter(
      static_cast<double>(triples) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  std::remove(path.c_str());
}
BENCHMARK(BM_LoadSnapshot)->Unit(benchmark::kMillisecond);

// The pre-storage cold start: regenerate the whole workload from its
// seed (schema + instances + every transition + commit hashing).
void BM_RegenerateInMemory(benchmark::State& state) {
  for (auto _ : state) {
    version::VersionedKnowledgeBase vkb =
        Regenerate(kTimedScale, kTimedSeed);
    benchmark::DoNotOptimize(vkb.head());
  }
}
BENCHMARK(BM_RegenerateInMemory)->Unit(benchmark::kMillisecond);

// The storage-layer cold start: latest snapshot + log tail replay,
// fingerprint chain verified. Must be >=5x faster than
// BM_RegenerateInMemory (E12's headline claim).
void BM_ColdStartFromDisk(benchmark::State& state) {
  const DurablePair pair = Persist(kTimedScale, kTimedSeed, "bm_cold");
  for (auto _ : state) {
    auto recovered =
        version::RecoverFromDisk(pair.snapshot_path, pair.log_path);
    if (!recovered.ok()) {
      state.SkipWithError("recovery failed");
      break;
    }
    benchmark::DoNotOptimize(recovered->vkb->head());
  }
  std::remove(pair.snapshot_path.c_str());
  std::remove(pair.log_path.c_str());
}
BENCHMARK(BM_ColdStartFromDisk)->Unit(benchmark::kMillisecond);

// Per-commit logging overhead: the write-ahead record append (no
// fsync vs fsync-on-commit).
void BM_LoggedCommit(benchmark::State& state) {
  const bool sync = state.range(0) != 0;
  version::VersionedKnowledgeBase vkb = Regenerate(kTimedScale, kTimedSeed);
  const std::string log_path = TempPath("bm_commit.evlog");
  std::remove(log_path.c_str());
  storage::LogOptions log_options;
  log_options.sync_on_append = sync;
  auto log = storage::CommitLog::Open(log_path, log_options);
  if (!log.ok()) {
    state.SkipWithError("log open failed");
    return;
  }
  // Pre-generate a pool of change sets (and intern their fresh terms)
  // so the loop times exactly commit + write-ahead append.
  std::vector<version::ChangeSet> pool;
  auto head = vkb.Snapshot(vkb.head());
  if (!head.ok()) {
    state.SkipWithError("workload failed");
    return;
  }
  for (uint32_t i = 0; i < 32; ++i) {
    workload::EvolutionOptions evolution_options;
    evolution_options.operations = 50;
    evolution_options.epoch = 100 + i;
    evolution_options.seed = kTimedSeed + 100 + i;
    pool.push_back(workload::GenerateEvolution(**head, vkb.dictionary(),
                                               evolution_options)
                       .changes);
  }
  vkb.AttachCommitLog(&*log);
  size_t next = 0;
  for (auto _ : state) {
    auto committed =
        vkb.Commit(pool[next++ % pool.size()], "bench", "logged commit");
    if (!committed.ok()) {
      state.SkipWithError("commit failed");
      break;
    }
    benchmark::DoNotOptimize(committed.ok());
  }
  std::remove(log_path.c_str());
}
BENCHMARK(BM_LoggedCommit)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"fsync"})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace evorec::bench

int main(int argc, char** argv) {
  evorec::bench::PrintPersistenceTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
