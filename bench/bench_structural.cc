// E3 — structural measures: exact vs sampled betweenness (paper §II.c).
// Table: Brandes exact cost vs pivot-sampled cost across schema-graph
// sizes, with top-10 agreement between the two rankings. Shape: the
// sampled variant is near-linear in pivots and keeps high top-k
// agreement.

#include <benchmark/benchmark.h>

#include <numeric>

#include "bench_common.h"

namespace evorec::bench {
namespace {

graph::SchemaGraph MakeSchemaGraph(size_t classes, uint64_t seed) {
  workload::SchemaGenOptions options;
  options.class_count = classes;
  options.property_count = classes / 2;
  options.seed = seed;
  const workload::GeneratedSchema generated =
      workload::GenerateSchema(options);
  const schema::SchemaView view = schema::SchemaView::Build(generated.kb);
  return graph::SchemaGraph::Build(view, view.classes());
}

std::vector<rdf::TermId> TopNodes(const std::vector<double>& scores,
                                  size_t k) {
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  order.resize(std::min(k, order.size()));
  return std::vector<rdf::TermId>(order.begin(), order.end());
}

void PrintStructuralTable() {
  PrintHeader("E3 — exact vs sampled betweenness",
              "betweenness/bridging shifts capture topology effects; "
              "sampling trades accuracy for speed");
  TablePrinter table({"nodes", "edges", "exact_ms", "pivots", "sampled_ms",
                      "top10_overlap"});
  for (size_t classes : {100, 400, 1600}) {
    const graph::SchemaGraph sg = MakeSchemaGraph(classes, 11);
    Stopwatch exact_timer;
    const auto exact = graph::BetweennessExact(sg.graph());
    const double exact_ms = exact_timer.ElapsedMillis();
    for (size_t pivots : {16, 64}) {
      Rng rng(13);
      Stopwatch sampled_timer;
      const auto sampled =
          graph::BetweennessSampled(sg.graph(), pivots, rng);
      const double sampled_ms = sampled_timer.ElapsedMillis();
      const double overlap =
          JaccardSimilarity(TopNodes(exact, 10), TopNodes(sampled, 10));
      table.AddRow({TablePrinter::Cell(sg.graph().node_count()),
                    TablePrinter::Cell(sg.graph().edge_count()),
                    TablePrinter::Cell(exact_ms, 2),
                    TablePrinter::Cell(pivots),
                    TablePrinter::Cell(sampled_ms, 2),
                    TablePrinter::Cell(overlap, 2)});
    }
  }
  table.Print(std::cout);
}

void PrintBridgingTable() {
  PrintHeader("E3b — bridging centrality profile",
              "nodes connecting densely connected components rank top on "
              "bridging centrality");
  // Barbell: two cliques joined through one bridge node.
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  for (graph::NodeId i = 0; i < 6; ++i) {
    for (graph::NodeId j = i + 1; j < 6; ++j) edges.emplace_back(i, j);
  }
  for (graph::NodeId i = 7; i < 13; ++i) {
    for (graph::NodeId j = i + 1; j < 13; ++j) edges.emplace_back(i, j);
  }
  edges.emplace_back(5, 6);
  edges.emplace_back(6, 7);
  const graph::Graph g = graph::Graph::FromEdges(13, std::move(edges));
  const auto betweenness = graph::BetweennessExact(g);
  const auto bridging = graph::BridgingCentrality(g, betweenness);
  TablePrinter table({"node", "role", "betweenness", "bridging"});
  for (graph::NodeId v : {0u, 5u, 6u, 7u}) {
    const char* role = v == 6 ? "bridge" : (v == 5 || v == 7)
                                               ? "clique-gate"
                                               : "clique-core";
    table.AddRow({TablePrinter::Cell(static_cast<size_t>(v)), role,
                  TablePrinter::Cell(betweenness[v], 1),
                  TablePrinter::Cell(bridging[v], 2)});
  }
  table.Print(std::cout);
  std::printf("expected shape: the bridge node dominates both columns.\n");
}

void BM_BetweennessExact(benchmark::State& state) {
  const graph::SchemaGraph sg =
      MakeSchemaGraph(static_cast<size_t>(state.range(0)), 11);
  for (auto _ : state) {
    auto scores = graph::BetweennessExact(sg.graph());
    benchmark::DoNotOptimize(scores.data());
  }
}
BENCHMARK(BM_BetweennessExact)->Arg(100)->Arg(400);

void BM_BetweennessSampled(benchmark::State& state) {
  const graph::SchemaGraph sg = MakeSchemaGraph(400, 11);
  Rng rng(13);
  for (auto _ : state) {
    auto scores = graph::BetweennessSampled(
        sg.graph(), static_cast<size_t>(state.range(0)), rng);
    benchmark::DoNotOptimize(scores.data());
  }
}
BENCHMARK(BM_BetweennessSampled)->Arg(16)->Arg(64);

void BM_BridgingCoefficient(benchmark::State& state) {
  const graph::SchemaGraph sg = MakeSchemaGraph(400, 11);
  for (auto _ : state) {
    auto coeff = graph::BridgingCoefficient(sg.graph());
    benchmark::DoNotOptimize(coeff.data());
  }
}
BENCHMARK(BM_BridgingCoefficient);

}  // namespace
}  // namespace evorec::bench

int main(int argc, char** argv) {
  evorec::bench::PrintStructuralTable();
  evorec::bench::PrintBridgingTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
