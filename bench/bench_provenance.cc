// E9 — transparency via provenance (paper §III.b): every recommended
// item must answer who/when/how; capture overhead must stay small.
// Table: end-to-end recommendation latency with and without provenance
// capture; store growth; derivation-chain query latency; trust scores
// per source kind.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace evorec::bench {
namespace {

struct PipelineSetup {
  workload::Scenario scenario;
  measures::MeasureRegistry registry;
  std::optional<measures::EvolutionContext> ctx;

  explicit PipelineSetup(uint64_t seed)
      : scenario(MakeScenario(seed)), registry(measures::DefaultRegistry()) {
    auto built = measures::EvolutionContext::FromVersions(
        *scenario.vkb, scenario.vkb->head() - 1, scenario.vkb->head());
    if (built.ok()) ctx.emplace(std::move(built).value());
  }

  static workload::Scenario MakeScenario(uint64_t seed) {
    workload::ScenarioScale scale;
    scale.classes = 60;
    scale.instances = 700;
    scale.edges = 1200;
    scale.versions = 2;
    scale.operations = 250;
    return workload::MakeDbpediaLike(seed, scale);
  }
};

void PrintOverheadTable() {
  PrintHeader("E9 — provenance capture overhead",
              "workflow systems systematically capture provenance so "
              "who/when/how stays answerable");
  PipelineSetup setup(71);
  if (!setup.ctx.has_value()) return;

  TablePrinter table({"capture", "runs", "total_ms", "records",
                      "ms_per_run"});
  for (bool capture : {false, true}) {
    provenance::ProvenanceStore store;
    recommend::RecommenderOptions options;
    options.record_seen = false;
    recommend::Recommender recommender(setup.registry, options);
    if (capture) recommender.AttachProvenance(&store);
    profile::HumanProfile user = setup.scenario.end_user;
    const size_t runs = 10;
    Stopwatch timer;
    for (size_t i = 0; i < runs; ++i) {
      auto list = recommender.RecommendForUser(*setup.ctx, user);
      benchmark::DoNotOptimize(list.ok());
    }
    const double total_ms = timer.ElapsedMillis();
    table.AddRow({capture ? "on" : "off", TablePrinter::Cell(runs),
                  TablePrinter::Cell(total_ms, 1),
                  TablePrinter::Cell(store.size()),
                  TablePrinter::Cell(total_ms / runs, 2)});
  }
  table.Print(std::cout);
  std::printf(
      "expected shape: capture adds 5 records/run at negligible "
      "relative cost (the pipeline itself dominates).\n");
}

void PrintTransparencyQueries() {
  PrintHeader("E9b — transparency queries and trust",
              "who created the item, when, by which process; trust per "
              "source kind");
  PipelineSetup setup(73);
  if (!setup.ctx.has_value()) return;
  provenance::ProvenanceStore store;
  recommend::Recommender recommender(setup.registry, {});
  recommender.AttachProvenance(&store);
  profile::HumanProfile user = setup.scenario.end_user;
  for (int i = 0; i < 20; ++i) {
    (void)recommender.RecommendForUser(*setup.ctx, user);
  }

  Stopwatch chain_timer;
  size_t chain_len = 0;
  for (const auto& record : store.records()) {
    auto chain = store.DerivationChain(record.id);
    if (chain.ok()) chain_len += chain->size();
  }
  const double chain_ms = chain_timer.ElapsedMillis();

  TablePrinter table({"metric", "value"});
  table.AddRow({"records", TablePrinter::Cell(store.size())});
  table.AddRow({"entity query (package)",
                TablePrinter::Cell(store.ForEntity("package").size())});
  table.AddRow({"agent query (evorec)",
                TablePrinter::Cell(store.ByAgent("evorec").size())});
  auto depth = store.DerivationDepth(store.size() - 1);
  table.AddRow({"max chain depth",
                TablePrinter::Cell(depth.ok() ? *depth : 0)});
  table.AddRow({"all-chains walk ms", TablePrinter::Cell(chain_ms, 2)});
  table.AddRow({"chain links visited", TablePrinter::Cell(chain_len)});
  // Trust per source kind on a synthetic chain.
  provenance::ProvenanceStore trust_store;
  provenance::ProvRecord obs;
  obs.entity = "obs";
  obs.source = provenance::SourceKind::kObservation;
  auto obs_id = trust_store.Append(obs);
  provenance::ProvRecord inf;
  inf.entity = "inf";
  inf.source = provenance::SourceKind::kInference;
  inf.inputs = {*obs_id};
  auto inf_id = trust_store.Append(inf);
  provenance::ProvRecord belief;
  belief.entity = "belief";
  belief.source = provenance::SourceKind::kBeliefAdoption;
  belief.inputs = {*inf_id};
  auto belief_id = trust_store.Append(belief);
  table.AddRow({"trust(observation)",
                TablePrinter::Cell(*provenance::TrustOf(trust_store,
                                                        *obs_id),
                                   3)});
  table.AddRow({"trust(inference<-obs)",
                TablePrinter::Cell(*provenance::TrustOf(trust_store,
                                                        *inf_id),
                                   3)});
  table.AddRow({"trust(belief<-inference)",
                TablePrinter::Cell(*provenance::TrustOf(trust_store,
                                                        *belief_id),
                                   3)});
  table.Print(std::cout);
}

void BM_ProvenanceAppend(benchmark::State& state) {
  provenance::ProvenanceStore store;
  provenance::ProvRecord record;
  record.entity = "e";
  record.agent = "a";
  record.source = provenance::SourceKind::kInference;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Append(record).ok());
  }
  state.counters["records"] = static_cast<double>(store.size());
}
BENCHMARK(BM_ProvenanceAppend);

void BM_DerivationChain(benchmark::State& state) {
  provenance::ProvenanceStore store;
  // A linear chain of the given depth.
  provenance::RecordId last = 0;
  for (int64_t i = 0; i < state.range(0); ++i) {
    provenance::ProvRecord record;
    record.entity = "e" + std::to_string(i);
    record.source = provenance::SourceKind::kInference;
    if (i > 0) record.inputs = {last};
    last = *store.Append(std::move(record));
  }
  for (auto _ : state) {
    auto chain = store.DerivationChain(last);
    benchmark::DoNotOptimize(chain.ok());
  }
}
BENCHMARK(BM_DerivationChain)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace evorec::bench

int main(int argc, char** argv) {
  evorec::bench::PrintOverheadTable();
  evorec::bench::PrintTransparencyQueries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
