// E11 — batched multi-user serving (engine layer): N users asking
// about one version pair share one cached EvolutionContext, one
// memoized report set, and one candidate pool. Cold = the paper's
// per-call processing model (context rebuilt per request); warm =
// RecommendationService with a hot cache. The figure table records
// req/s for 1→64 users and the thread sweep; the timing section is
// the committed BENCH_* evidence.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace evorec::bench {
namespace {

workload::Scenario ServingScenario(uint64_t seed = 111) {
  // Serving-scale KB: large enough that the shared artefacts
  // (snapshots, delta, schema graphs, betweenness) dominate a cold
  // request, as they do on real encyclopedic KBs.
  workload::ScenarioScale scale;
  scale.classes = 220;
  scale.properties = 70;
  scale.instances = 4500;
  scale.edges = 8000;
  scale.versions = 2;
  scale.operations = 700;
  return workload::MakeDbpediaLike(seed, scale);
}

std::vector<profile::HumanProfile> CloneUsers(
    const profile::HumanProfile& seed_user, size_t n) {
  std::vector<profile::HumanProfile> users;
  users.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    profile::HumanProfile user = seed_user;
    user.set_id("user-" + std::to_string(i));
    users.push_back(std::move(user));
  }
  return users;
}

// One request per user, each paying the full per-call cost: context
// build + every measure + candidate generation (the pre-engine
// serving model).
double ColdServeSeconds(const workload::Scenario& scenario,
                        const measures::MeasureRegistry& registry,
                        std::vector<profile::HumanProfile>& users) {
  recommend::RecommenderOptions options;
  options.record_seen = false;
  const recommend::Recommender recommender(registry, options);
  Stopwatch timer;
  for (profile::HumanProfile& user : users) {
    auto ctx = measures::EvolutionContext::FromVersions(*scenario.vkb, 0, 1);
    if (!ctx.ok()) return -1.0;
    auto list = recommender.RecommendForUser(*ctx, user);
    if (!list.ok()) return -1.0;
    benchmark::DoNotOptimize(list->items.size());
  }
  return timer.ElapsedMillis() / 1000.0;
}

void PrintServingTable() {
  PrintHeader("E11 — batched multi-user serving over one version pair",
              "shared contexts + memoized reports amortise the expensive "
              "artefacts across every user asking about the same pair");

  const measures::MeasureRegistry registry = measures::DefaultRegistry();
  workload::Scenario scenario = ServingScenario();

  TablePrinter table({"users", "cold_s", "cold_req_s", "warm_s",
                      "warm_req_s", "speedup", "ctx_builds"});
  for (size_t n : {1u, 4u, 16u, 64u}) {
    std::vector<profile::HumanProfile> cold_users =
        CloneUsers(scenario.end_user, n);
    const double cold_s = ColdServeSeconds(scenario, registry, cold_users);
    if (cold_s < 0.0) continue;

    engine::ServiceOptions service_options;
    service_options.recommender.record_seen = false;
    engine::RecommendationService service(registry, service_options);
    std::vector<profile::HumanProfile> warm_users =
        CloneUsers(scenario.end_user, n);
    std::vector<profile::HumanProfile*> pointers;
    for (profile::HumanProfile& user : warm_users) {
      pointers.push_back(&user);
    }
    // Warm the cache with one throwaway request, then time the batch.
    profile::HumanProfile warmup = scenario.end_user;
    if (!service.Recommend(*scenario.vkb, 0, 1, warmup).ok()) continue;
    Stopwatch warm_timer;
    auto batch = service.RecommendBatch(*scenario.vkb, 0, 1, pointers);
    const double warm_s = warm_timer.ElapsedMillis() / 1000.0;
    if (!batch.ok()) continue;

    const engine::EngineStats stats = service.engine_stats();
    table.AddRow({TablePrinter::Cell(n), TablePrinter::Cell(cold_s, 3),
                  TablePrinter::Cell(static_cast<double>(n) / cold_s, 0),
                  TablePrinter::Cell(warm_s, 4),
                  TablePrinter::Cell(static_cast<double>(n) / warm_s, 0),
                  TablePrinter::Cell(cold_s / warm_s, 1),
                  TablePrinter::Cell(stats.contexts_built)});
  }
  table.Print(std::cout);
  std::printf(
      "expected shape: cold req/s is flat (every request rebuilds the "
      "context); warm req/s grows with the batch while ctx_builds stays "
      "at 1 — zero redundant context builds.\n");

  // Thread sweep: one warm 64-user batch, 1→T workers.
  TablePrinter threads_table({"threads", "batch64_ms", "req_s"});
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    if (threads > 2 * ThreadPool::DefaultThreadCount()) break;
    engine::ServiceOptions service_options;
    service_options.recommender.record_seen = false;
    service_options.engine.threads = threads;
    engine::RecommendationService service(registry, service_options);
    std::vector<profile::HumanProfile> users =
        CloneUsers(scenario.end_user, 64);
    std::vector<profile::HumanProfile*> pointers;
    for (profile::HumanProfile& user : users) pointers.push_back(&user);
    profile::HumanProfile warmup = scenario.end_user;
    if (!service.Recommend(*scenario.vkb, 0, 1, warmup).ok()) continue;
    Stopwatch timer;
    auto batch = service.RecommendBatch(*scenario.vkb, 0, 1, pointers);
    const double ms = timer.ElapsedMillis();
    if (!batch.ok()) continue;
    threads_table.AddRow({TablePrinter::Cell(threads),
                          TablePrinter::Cell(ms, 2),
                          TablePrinter::Cell(64.0 / (ms / 1000.0), 0)});
  }
  threads_table.Print(std::cout);
  std::printf(
      "expected shape: the per-user stages scale with the worker count "
      "until they are too cheap to matter.\n");
}

// Timing section — the committed BENCH_* evidence for the ≥10x
// warm-batch speedup claim.

// Cold baseline: 64 sequential per-call requests, context rebuilt
// every time.
void BM_ColdServe64(benchmark::State& state) {
  workload::Scenario scenario = ServingScenario();
  const measures::MeasureRegistry registry = measures::DefaultRegistry();
  for (auto _ : state) {
    std::vector<profile::HumanProfile> users =
        CloneUsers(scenario.end_user, 64);
    const double seconds = ColdServeSeconds(scenario, registry, users);
    if (seconds < 0.0) state.SkipWithError("cold serve failed");
  }
  state.counters["req_per_s"] = benchmark::Counter(
      64.0 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ColdServe64)->Unit(benchmark::kMillisecond);

// Warm batch: the engine's cache is hot; one RecommendBatch serves all
// 64 users.
void BM_WarmBatch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  workload::Scenario scenario = ServingScenario();
  const measures::MeasureRegistry registry = measures::DefaultRegistry();
  engine::ServiceOptions service_options;
  service_options.recommender.record_seen = false;
  engine::RecommendationService service(registry, service_options);
  std::vector<profile::HumanProfile> users =
      CloneUsers(scenario.end_user, n);
  std::vector<profile::HumanProfile*> pointers;
  for (profile::HumanProfile& user : users) pointers.push_back(&user);
  profile::HumanProfile warmup = scenario.end_user;
  if (!service.Recommend(*scenario.vkb, 0, 1, warmup).ok()) {
    state.SkipWithError("warmup failed");
    return;
  }
  for (auto _ : state) {
    auto batch = service.RecommendBatch(*scenario.vkb, 0, 1, pointers);
    if (!batch.ok()) state.SkipWithError("batch failed");
    benchmark::DoNotOptimize(batch.ok());
  }
  if (service.engine_stats().contexts_built != 1) {
    state.SkipWithError("redundant context builds detected");
  }
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WarmBatch)->Arg(1)->Arg(64)->Unit(benchmark::kMillisecond);

// Thread sweep of the warm 64-user batch.
void BM_WarmBatch64Threads(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  workload::Scenario scenario = ServingScenario();
  const measures::MeasureRegistry registry = measures::DefaultRegistry();
  engine::ServiceOptions service_options;
  service_options.recommender.record_seen = false;
  service_options.engine.threads = threads;
  engine::RecommendationService service(registry, service_options);
  std::vector<profile::HumanProfile> users =
      CloneUsers(scenario.end_user, 64);
  std::vector<profile::HumanProfile*> pointers;
  for (profile::HumanProfile& user : users) pointers.push_back(&user);
  profile::HumanProfile warmup = scenario.end_user;
  if (!service.Recommend(*scenario.vkb, 0, 1, warmup).ok()) {
    state.SkipWithError("warmup failed");
    return;
  }
  for (auto _ : state) {
    auto batch = service.RecommendBatch(*scenario.vkb, 0, 1, pointers);
    benchmark::DoNotOptimize(batch.ok());
  }
}
BENCHMARK(BM_WarmBatch64Threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Cold engine request: cache miss end to end (context build + reports
// + pool + one user) — what a brand-new version pair costs.
void BM_ColdEngineRequest(benchmark::State& state) {
  workload::Scenario scenario = ServingScenario();
  const measures::MeasureRegistry registry = measures::DefaultRegistry();
  for (auto _ : state) {
    engine::ServiceOptions service_options;
    service_options.recommender.record_seen = false;
    engine::RecommendationService service(registry, service_options);
    profile::HumanProfile user = scenario.end_user;
    auto list = service.Recommend(*scenario.vkb, 0, 1, user);
    benchmark::DoNotOptimize(list.ok());
  }
}
BENCHMARK(BM_ColdEngineRequest)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace evorec::bench

int main(int argc, char** argv) {
  evorec::bench::PrintServingTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
