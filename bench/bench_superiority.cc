// E4 — importance shift vs simple counting (paper §II.d).
// The paper's one falsifiable claim: measuring the change of a class's
// importance "is, in many cases, superior to the simple counting of
// changes, because it shows the cumulative effect of these changes".
//
// Construction: one transition containing
//   (a) heavy low-impact churn — instance noise on cold leaf classes,
//   (b) a light high-impact rewiring — a handful of subclass moves
//       that detach spokes from the Hub and re-attach them elsewhere.
// Ground truth high-impact set: {Hub, NewHome}. Counting is dominated
// by (a); the structural importance-shift measures surface (b).

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace evorec::bench {
namespace {

struct SuperiorityWorkload {
  rdf::KnowledgeBase before;
  rdf::KnowledgeBase after;
  rdf::TermId hub;
  rdf::TermId new_home;
  std::vector<rdf::TermId> high_impact;  // ground truth
};

SuperiorityWorkload Make(size_t spokes, size_t cold_classes,
                         size_t churn_per_cold, size_t moved_spokes) {
  SuperiorityWorkload w;
  const rdf::Vocabulary& voc = w.before.vocabulary();
  w.hub = w.before.DeclareClass("http://x/Hub");
  w.new_home = w.before.DeclareClass("http://x/NewHome");
  for (size_t i = 0; i < spokes; ++i) {
    const std::string iri = "http://x/Spoke" + std::to_string(i);
    const rdf::TermId spoke = w.before.DeclareClass(iri);
    w.before.store().Add({spoke, voc.rdfs_subclass_of, w.hub});
    // Spokes carry their own children so detaching them moves mass.
    for (size_t c = 0; c < 3; ++c) {
      const rdf::TermId child = w.before.DeclareClass(
          iri + "/Sub" + std::to_string(c));
      w.before.store().Add({child, voc.rdfs_subclass_of, spoke});
    }
  }
  const rdf::TermId cold_root = w.before.DeclareClass("http://x/ColdRoot");
  std::vector<rdf::TermId> cold;
  for (size_t i = 0; i < cold_classes; ++i) {
    const rdf::TermId c =
        w.before.DeclareClass("http://x/Cold" + std::to_string(i));
    w.before.store().Add({c, voc.rdfs_subclass_of, cold_root});
    cold.push_back(c);
  }

  w.after = w.before;
  // (a) churn: instance noise on cold classes.
  for (size_t i = 0; i < cold.size(); ++i) {
    for (size_t n = 0; n < churn_per_cold; ++n) {
      w.after.store().Add(
          {w.after.dictionary().InternIri("http://x/cold" +
                                          std::to_string(i) + "/inst" +
                                          std::to_string(n)),
           voc.rdf_type, cold[i]});
    }
  }
  // (b) rewiring: detach `moved_spokes` spokes from Hub, re-attach to
  // NewHome (2 triples per move).
  for (size_t i = 0; i < moved_spokes && i < spokes; ++i) {
    const rdf::TermId spoke = w.after.dictionary().Find(
        rdf::Term::Iri("http://x/Spoke" + std::to_string(i)));
    w.after.store().Remove({spoke, voc.rdfs_subclass_of, w.hub});
    w.after.store().Add({spoke, voc.rdfs_subclass_of, w.new_home});
  }
  w.high_impact = {w.hub, w.new_home};
  return w;
}

size_t RankOf(const measures::MeasureReport& report, rdf::TermId term) {
  const auto sorted = report.Sorted();
  for (size_t i = 0; i < sorted.scores().size(); ++i) {
    if (sorted.scores()[i].term == term) return i + 1;
  }
  return sorted.scores().size() + 1;
}

void PrintSuperiorityTable() {
  PrintHeader("E4 — importance shift vs change counting",
              "importance-shift measures are 'in many cases superior to "
              "the simple counting of changes'");
  TablePrinter table({"churn/cold", "moves", "measure", "hub_rank",
                      "p@2(truth)", "tau_vs_count"});
  for (size_t churn : {10, 40}) {
    for (size_t moves : {2, 6}) {
      SuperiorityWorkload w = Make(/*spokes=*/8, /*cold_classes=*/12,
                                   churn, moves);
      auto ctx = measures::EvolutionContext::Build(w.before, w.after);
      if (!ctx.ok()) continue;

      measures::ClassChangeCountMeasure counting;
      auto count_report = counting.Compute(*ctx);
      if (!count_report.ok()) continue;
      const auto count_aligned =
          count_report->AlignedScores(ctx->union_classes());

      std::vector<std::unique_ptr<measures::EvolutionMeasure>> shifts;
      shifts.push_back(std::make_unique<measures::BetweennessShiftMeasure>());
      shifts.push_back(std::make_unique<measures::BridgingShiftMeasure>());
      shifts.push_back(std::make_unique<measures::RelevanceShiftMeasure>());

      table.AddRow({TablePrinter::Cell(churn), TablePrinter::Cell(moves),
                    "class_change_count",
                    TablePrinter::Cell(RankOf(*count_report, w.hub)),
                    TablePrinter::Cell(
                        PrecisionAtK(*count_report, w.high_impact, 2), 2),
                    "1.00"});
      for (const auto& measure : shifts) {
        auto report = measure->Compute(*ctx);
        if (!report.ok()) continue;
        const double tau = KendallTau(
            count_aligned, report->AlignedScores(ctx->union_classes()));
        table.AddRow(
            {TablePrinter::Cell(churn), TablePrinter::Cell(moves),
             measure->info().name,
             TablePrinter::Cell(RankOf(*report, w.hub)),
             TablePrinter::Cell(PrecisionAtK(*report, w.high_impact, 2), 2),
             TablePrinter::Cell(tau, 2)});
      }
    }
  }
  table.Print(std::cout);
  std::printf(
      "expected shape: counting buries the Hub under cold churn "
      "(hub_rank grows with churn); structural shifts keep hub_rank at "
      "the top and p@2 near 1; low tau confirms the rankings disagree.\n");
}

void BM_ImportanceShiftSuite(benchmark::State& state) {
  SuperiorityWorkload w = Make(8, 12, 40, 4);
  auto ctx = measures::EvolutionContext::Build(w.before, w.after);
  measures::BetweennessShiftMeasure betweenness;
  measures::RelevanceShiftMeasure relevance;
  for (auto _ : state) {
    benchmark::DoNotOptimize(betweenness.Compute(*ctx).ok());
    benchmark::DoNotOptimize(relevance.Compute(*ctx).ok());
  }
}
BENCHMARK(BM_ImportanceShiftSuite);

}  // namespace
}  // namespace evorec::bench

int main(int argc, char** argv) {
  evorec::bench::PrintSuperiorityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
