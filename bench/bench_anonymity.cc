// E8 — anonymity (paper §III.e): aggregate evolution views can still
// re-identify individuals; k-anonymity must be enforced with
// measurable information loss. Sweeps k on the clinical scenario's
// per-class change table.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace evorec::bench {
namespace {

struct ClinicalTable {
  anonymity::AggregateTable table;
  anonymity::ValueHierarchy taxonomy;
};

ClinicalTable MakeClinicalTable(uint64_t seed) {
  workload::ScenarioScale scale;
  scale.classes = 80;
  scale.properties = 25;
  scale.instances = 1500;
  scale.edges = 2500;
  scale.versions = 2;
  scale.operations = 400;
  workload::Scenario scenario = workload::MakeClinicalKb(seed, scale);
  auto ctx = measures::EvolutionContext::FromVersions(
      *scenario.vkb, scenario.vkb->head() - 1, scenario.vkb->head());
  ClinicalTable out{anonymity::AggregateTable({"class"}, "changes"), {}};
  if (!ctx.ok()) return out;
  const auto head = scenario.vkb->Snapshot(scenario.vkb->head());
  const schema::SchemaView view = schema::SchemaView::Build(**head);
  for (rdf::TermId cls : ctx->union_classes()) {
    const size_t population = view.InstanceCount(cls);
    if (population == 0) continue;
    (void)out.table.AddRow(
        {(*head)->dictionary().term(cls).lexical},
        static_cast<double>(ctx->delta_index().ExtendedChanges(cls)),
        population);
  }
  out.taxonomy = anonymity::ValueHierarchy::FromClassHierarchy(
      view.hierarchy(), (*head)->dictionary());
  return out;
}

void PrintAnonymityTable() {
  PrintHeader("E8 — k-anonymous evolution reports",
              "'even if data is aggregated, it is possible to re-identify "
              "sensitive data' — enforce k-anonymity, measure the cost");
  ClinicalTable clinical = MakeClinicalTable(53);
  if (clinical.table.row_count() == 0) return;
  TablePrinter table({"k", "groups_before", "violating_before",
                      "risk_before", "gen_level", "suppressed",
                      "info_loss", "risk_after", "anonymize_ms"});
  for (size_t k : {2, 5, 10, 25}) {
    const auto groups = anonymity::EquivalenceGroups(clinical.table);
    const auto violating = anonymity::ViolatingGroups(clinical.table, k);
    Stopwatch timer;
    auto result = anonymity::Anonymize(clinical.table, k,
                                       {clinical.taxonomy});
    const double ms = timer.ElapsedMillis();
    if (!result.ok()) continue;
    table.AddRow(
        {TablePrinter::Cell(k), TablePrinter::Cell(groups.size()),
         TablePrinter::Cell(violating.size()),
         TablePrinter::Cell(
             anonymity::ReidentificationRisk(clinical.table), 3),
         TablePrinter::Cell(result->levels.empty() ? size_t{0}
                                                   : result->levels[0]),
         TablePrinter::Cell(result->suppressed_count),
         TablePrinter::Cell(result->information_loss, 3),
         TablePrinter::Cell(
             anonymity::ReidentificationRisk(result->table), 3),
         TablePrinter::Cell(ms, 2)});
  }
  table.Print(std::cout);
  std::printf(
      "expected shape: risk_after <= 1/k everywhere; generalisation "
      "level, suppression and info_loss grow monotonically with k.\n");
}

void PrintAccessPolicyTable() {
  PrintHeader("E8b — strict access rules at the recommender gate",
              "strict rules prohibiting reach of personal data");
  workload::ScenarioScale scale;
  scale.classes = 60;
  scale.instances = 700;
  scale.edges = 1200;
  scale.versions = 2;
  scale.operations = 300;
  workload::Scenario scenario = workload::MakeClinicalKb(61, scale);
  auto ctx = measures::EvolutionContext::FromVersions(
      *scenario.vkb, scenario.vkb->head() - 1, scenario.vkb->head());
  if (!ctx.ok()) return;
  measures::MeasureRegistry registry = measures::DefaultRegistry();

  TablePrinter table({"agent", "pool", "visible", "dropped",
                      "redacted_terms"});
  for (const char* agent : {"analyst", "dpo"}) {
    auto pool = recommend::GenerateCandidates(registry, *ctx, {});
    if (!pool.ok()) continue;
    const size_t pool_size = pool->size();
    recommend::GateOutcome outcome = recommend::ApplyAccessGate(
        &scenario.policy, agent, std::move(pool).value(), 10);
    table.AddRow({agent, TablePrinter::Cell(pool_size),
                  TablePrinter::Cell(outcome.candidates.size()),
                  TablePrinter::Cell(outcome.dropped_candidates),
                  TablePrinter::Cell(outcome.redacted_terms)});
  }
  table.Print(std::cout);
  std::printf(
      "expected shape: the ungranted analyst loses the sensitive-region "
      "candidates the DPO keeps.\n");
}

void BM_Anonymize(benchmark::State& state) {
  ClinicalTable clinical = MakeClinicalTable(53);
  const size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto result = anonymity::Anonymize(clinical.table, k,
                                       {clinical.taxonomy});
    benchmark::DoNotOptimize(result.ok());
  }
  state.counters["rows"] = static_cast<double>(clinical.table.row_count());
}
BENCHMARK(BM_Anonymize)->Arg(2)->Arg(10)->Arg(25);

void BM_KAnonymityCheck(benchmark::State& state) {
  ClinicalTable clinical = MakeClinicalTable(53);
  for (auto _ : state) {
    benchmark::DoNotOptimize(anonymity::IsKAnonymous(clinical.table, 10));
  }
}
BENCHMARK(BM_KAnonymityCheck);

}  // namespace
}  // namespace evorec::bench

int main(int argc, char** argv) {
  evorec::bench::PrintAnonymityTable();
  evorec::bench::PrintAccessPolicyTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
