// E1 — low-level delta computation and archive policies (paper §II.a).
// Table 1: |δ+|, |δ−|, |δ| and delta-computation wall clock across KB
// scale and change ratio. Table 2: archive policy ablation — storage
// and snapshot reconstruction cost, full materialisation vs delta
// chain.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace evorec::bench {
namespace {

void PrintDeltaScalingTable() {
  PrintHeader("E1 — delta computation",
              "|delta| = |delta+| + |delta-| quantifies change and must "
              "scale to large KBs");
  TablePrinter table({"classes", "triples", "ops", "|d+|", "|d-|", "|d|",
                      "delta_ms"});
  for (size_t classes : {50, 200, 800}) {
    for (size_t ops : {100, 500, 2000}) {
      TwoVersionWorkload w = MakeTwoVersionWorkload(
          classes, classes * 20, classes * 35, ops, /*seed=*/17);
      Stopwatch timer;
      const delta::LowLevelDelta delta =
          delta::ComputeLowLevelDelta(w.generated.kb, w.after);
      const double ms = timer.ElapsedMillis();
      table.AddRow({TablePrinter::Cell(classes),
                    TablePrinter::Cell(w.generated.kb.size()),
                    TablePrinter::Cell(ops),
                    TablePrinter::Cell(delta.added.size()),
                    TablePrinter::Cell(delta.removed.size()),
                    TablePrinter::Cell(delta.size()),
                    TablePrinter::Cell(ms, 2)});
    }
  }
  table.Print(std::cout);
}

// Builds a version chain at the E1b default scale (200 classes, 4000
// instances, 7000 edges base; `versions` x `ops_per_version` evolution
// steps) — shared by the E1b table and the replay benchmarks so they
// measure the same workload.
version::VersionedKnowledgeBase MakeVersionChain(version::ArchivePolicy policy,
                                                 size_t versions,
                                                 size_t ops_per_version) {
  TwoVersionWorkload w =
      MakeTwoVersionWorkload(200, 4000, 7000, 100, /*seed=*/23);
  version::VersionedKnowledgeBase vkb(policy, w.generated.kb);
  for (size_t v = 0; v < versions; ++v) {
    workload::EvolutionOptions options;
    options.operations = ops_per_version;
    options.seed = 31 + v;
    options.epoch = v + 1;
    auto head = vkb.Snapshot(vkb.head());
    const workload::EvolutionOutcome outcome =
        workload::GenerateEvolution(**head, vkb.dictionary(), options);
    (void)vkb.Commit(outcome.changes, "bench", "step");
  }
  vkb.EvictSnapshotCache();
  return vkb;
}

void PrintArchivePolicyTable() {
  PrintHeader("E1b — archive policy ablation (cf. [13])",
              "delta chains trade snapshot latency for storage");
  // "sec_idx_builds" counts POS/OSP builds performed by the head/mid
  // reconstructions — the SPO-only replay path must keep it at 0.
  TablePrinter table({"policy", "versions", "storage", "snapshot_head_ms",
                      "snapshot_mid_ms", "sec_idx_builds"});
  for (auto policy : {version::ArchivePolicy::kFullMaterialization,
                      version::ArchivePolicy::kDeltaChain,
                      version::ArchivePolicy::kHybridCheckpoint}) {
    auto vkb = MakeVersionChain(policy, 12, 120);
    Stopwatch head_timer;
    auto head = vkb.MaterializeUncached(vkb.head());
    const double head_ms = head_timer.ElapsedMillis();
    Stopwatch mid_timer;
    auto mid = vkb.MaterializeUncached(vkb.head() / 2);
    const double mid_ms = mid_timer.ElapsedMillis();
    const uint64_t sec_idx_builds =
        head->store().stats().secondary_builds() +
        mid->store().stats().secondary_builds();
    const char* policy_name =
        policy == version::ArchivePolicy::kFullMaterialization
            ? "full_materialization"
            : policy == version::ArchivePolicy::kDeltaChain
                  ? "delta_chain"
                  : "hybrid_checkpoint(4)";
    table.AddRow(
        {policy_name, TablePrinter::Cell(vkb.version_count()),
         HumanBytes(vkb.StorageBytes()), TablePrinter::Cell(head_ms, 2),
         TablePrinter::Cell(mid_ms, 2), TablePrinter::Cell(sec_idx_builds)});
  }
  table.Print(std::cout);
}

void BM_DeltaComputation(benchmark::State& state) {
  const size_t classes = static_cast<size_t>(state.range(0));
  TwoVersionWorkload w = MakeTwoVersionWorkload(
      classes, classes * 20, classes * 35, classes * 2, /*seed=*/17);
  for (auto _ : state) {
    auto delta = delta::ComputeLowLevelDelta(w.generated.kb, w.after);
    benchmark::DoNotOptimize(delta.added.data());
  }
  state.counters["triples"] = static_cast<double>(w.generated.kb.size());
}
BENCHMARK(BM_DeltaComputation)->Arg(50)->Arg(200)->Arg(800);

void BM_PerTermIndex(benchmark::State& state) {
  TwoVersionWorkload w =
      MakeTwoVersionWorkload(200, 4000, 7000, 1000, /*seed=*/17);
  const delta::LowLevelDelta delta =
      delta::ComputeLowLevelDelta(w.generated.kb, w.after);
  for (auto _ : state) {
    auto counts = delta::PerTermChangeCounts(delta);
    benchmark::DoNotOptimize(counts.size());
  }
}
BENCHMARK(BM_PerTermIndex);

// The E1 replay row: reconstruct the head snapshot from the base plus
// the delta chain — the hot loop behind every historical measure.
void BM_SnapshotReplay(benchmark::State& state) {
  const auto policy = static_cast<version::ArchivePolicy>(state.range(0));
  auto vkb = MakeVersionChain(policy, 12, 120);
  for (auto _ : state) {
    auto kb = vkb.MaterializeUncached(vkb.head());
    benchmark::DoNotOptimize(kb->size());
  }
  auto head = vkb.MaterializeUncached(vkb.head());
  state.counters["triples"] = static_cast<double>(head->size());
}
BENCHMARK(BM_SnapshotReplay)
    ->Arg(static_cast<int>(version::ArchivePolicy::kDeltaChain))
    ->Arg(static_cast<int>(version::ArchivePolicy::kHybridCheckpoint));

// Repeated small-delta Compact(): the per-commit indexing cost. Each
// iteration applies a 64-triple add batch plus a 64-triple remove
// batch (steady-state size) and compacts.
void BM_RepeatedSmallDeltaCompact(benchmark::State& state) {
  const uint32_t base = static_cast<uint32_t>(state.range(0));
  rdf::TripleStore store;
  std::vector<rdf::Triple> triples;
  triples.reserve(base);
  for (uint32_t i = 0; i < base; ++i) {
    triples.push_back({i / 8, 1000000u + i % 17, i});
  }
  store.AddAll(triples);
  store.Compact();
  const uint32_t d = 64;
  uint64_t epoch = 0;
  for (auto _ : state) {
    const uint32_t add_tag = static_cast<uint32_t>(epoch % 2);
    for (uint32_t j = 0; j < d; ++j) {
      store.Add({2000000u + j, 7, add_tag});
      store.Remove({2000000u + j, 7, 1 - add_tag});
    }
    store.Compact();
    benchmark::DoNotOptimize(store.size());
    ++epoch;
  }
}
BENCHMARK(BM_RepeatedSmallDeltaCompact)->Arg(20000)->Arg(100000);

// Same write pattern, but every compact is followed by one POS and
// one OSP lookup — the cost of keeping all three permutation indexes
// usable between small deltas.
void BM_RepeatedSmallDeltaCompactAllIndexes(benchmark::State& state) {
  const uint32_t base = static_cast<uint32_t>(state.range(0));
  rdf::TripleStore store;
  std::vector<rdf::Triple> triples;
  triples.reserve(base);
  for (uint32_t i = 0; i < base; ++i) {
    triples.push_back({i / 8, 1000000u + i % 17, i});
  }
  store.AddAll(triples);
  store.Compact();
  const uint32_t d = 64;
  uint64_t epoch = 0;
  for (auto _ : state) {
    const uint32_t add_tag = static_cast<uint32_t>(epoch % 2);
    for (uint32_t j = 0; j < d; ++j) {
      store.Add({2000000u + j, 7, add_tag});
      store.Remove({2000000u + j, 7, 1 - add_tag});
    }
    store.Compact();
    benchmark::DoNotOptimize(
        store.Match({rdf::kAnyTerm, 7, add_tag}).size());      // POS
    benchmark::DoNotOptimize(
        store.Match({rdf::kAnyTerm, rdf::kAnyTerm, 3}).size());  // OSP
    ++epoch;
  }
}
BENCHMARK(BM_RepeatedSmallDeltaCompactAllIndexes)->Arg(20000)->Arg(100000);

void BM_CommitThroughput(benchmark::State& state) {
  const auto policy = static_cast<version::ArchivePolicy>(state.range(0));
  TwoVersionWorkload w =
      MakeTwoVersionWorkload(100, 2000, 3500, 100, /*seed=*/29);
  for (auto _ : state) {
    state.PauseTiming();
    version::VersionedKnowledgeBase vkb(policy, w.generated.kb);
    state.ResumeTiming();
    (void)vkb.Commit(w.outcome.changes, "bench", "step");
    benchmark::DoNotOptimize(vkb.version_count());
  }
}
BENCHMARK(BM_CommitThroughput)
    ->Arg(static_cast<int>(version::ArchivePolicy::kFullMaterialization))
    ->Arg(static_cast<int>(version::ArchivePolicy::kDeltaChain));

}  // namespace
}  // namespace evorec::bench

int main(int argc, char** argv) {
  evorec::bench::PrintDeltaScalingTable();
  evorec::bench::PrintArchivePolicyTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
