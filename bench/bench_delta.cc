// E1 — low-level delta computation and archive policies (paper §II.a).
// Table 1: |δ+|, |δ−|, |δ| and delta-computation wall clock across KB
// scale and change ratio. Table 2: archive policy ablation — storage
// and snapshot reconstruction cost, full materialisation vs delta
// chain.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace evorec::bench {
namespace {

void PrintDeltaScalingTable() {
  PrintHeader("E1 — delta computation",
              "|delta| = |delta+| + |delta-| quantifies change and must "
              "scale to large KBs");
  TablePrinter table({"classes", "triples", "ops", "|d+|", "|d-|", "|d|",
                      "delta_ms"});
  for (size_t classes : {50, 200, 800}) {
    for (size_t ops : {100, 500, 2000}) {
      TwoVersionWorkload w = MakeTwoVersionWorkload(
          classes, classes * 20, classes * 35, ops, /*seed=*/17);
      Stopwatch timer;
      const delta::LowLevelDelta delta =
          delta::ComputeLowLevelDelta(w.generated.kb, w.after);
      const double ms = timer.ElapsedMillis();
      table.AddRow({TablePrinter::Cell(classes),
                    TablePrinter::Cell(w.generated.kb.size()),
                    TablePrinter::Cell(ops),
                    TablePrinter::Cell(delta.added.size()),
                    TablePrinter::Cell(delta.removed.size()),
                    TablePrinter::Cell(delta.size()),
                    TablePrinter::Cell(ms, 2)});
    }
  }
  table.Print(std::cout);
}

void PrintArchivePolicyTable() {
  PrintHeader("E1b — archive policy ablation (cf. [13])",
              "delta chains trade snapshot latency for storage");
  TablePrinter table({"policy", "versions", "storage", "snapshot_head_ms",
                      "snapshot_mid_ms"});
  for (auto policy : {version::ArchivePolicy::kFullMaterialization,
                      version::ArchivePolicy::kDeltaChain,
                      version::ArchivePolicy::kHybridCheckpoint}) {
    TwoVersionWorkload w =
        MakeTwoVersionWorkload(200, 4000, 7000, 100, /*seed=*/23);
    version::VersionedKnowledgeBase vkb(policy, w.generated.kb);
    for (size_t v = 0; v < 12; ++v) {
      workload::EvolutionOptions options;
      options.operations = 120;
      options.seed = 31 + v;
      options.epoch = v + 1;
      auto head = vkb.Snapshot(vkb.head());
      const workload::EvolutionOutcome outcome = workload::GenerateEvolution(
          **head, vkb.dictionary(), options);
      (void)vkb.Commit(outcome.changes, "bench", "step");
    }
    vkb.EvictSnapshotCache();
    Stopwatch head_timer;
    auto head = vkb.MaterializeUncached(vkb.head());
    const double head_ms = head_timer.ElapsedMillis();
    Stopwatch mid_timer;
    auto mid = vkb.MaterializeUncached(vkb.head() / 2);
    const double mid_ms = mid_timer.ElapsedMillis();
    (void)head;
    (void)mid;
    const char* policy_name =
        policy == version::ArchivePolicy::kFullMaterialization
            ? "full_materialization"
            : policy == version::ArchivePolicy::kDeltaChain
                  ? "delta_chain"
                  : "hybrid_checkpoint(4)";
    table.AddRow(
        {policy_name, TablePrinter::Cell(vkb.version_count()),
         HumanBytes(vkb.StorageBytes()), TablePrinter::Cell(head_ms, 2),
         TablePrinter::Cell(mid_ms, 2)});
  }
  table.Print(std::cout);
}

void BM_DeltaComputation(benchmark::State& state) {
  const size_t classes = static_cast<size_t>(state.range(0));
  TwoVersionWorkload w = MakeTwoVersionWorkload(
      classes, classes * 20, classes * 35, classes * 2, /*seed=*/17);
  for (auto _ : state) {
    auto delta = delta::ComputeLowLevelDelta(w.generated.kb, w.after);
    benchmark::DoNotOptimize(delta.added.data());
  }
  state.counters["triples"] = static_cast<double>(w.generated.kb.size());
}
BENCHMARK(BM_DeltaComputation)->Arg(50)->Arg(200)->Arg(800);

void BM_PerTermIndex(benchmark::State& state) {
  TwoVersionWorkload w =
      MakeTwoVersionWorkload(200, 4000, 7000, 1000, /*seed=*/17);
  const delta::LowLevelDelta delta =
      delta::ComputeLowLevelDelta(w.generated.kb, w.after);
  for (auto _ : state) {
    auto counts = delta::PerTermChangeCounts(delta);
    benchmark::DoNotOptimize(counts.size());
  }
}
BENCHMARK(BM_PerTermIndex);

void BM_CommitThroughput(benchmark::State& state) {
  const auto policy = static_cast<version::ArchivePolicy>(state.range(0));
  TwoVersionWorkload w =
      MakeTwoVersionWorkload(100, 2000, 3500, 100, /*seed=*/29);
  for (auto _ : state) {
    state.PauseTiming();
    version::VersionedKnowledgeBase vkb(policy, w.generated.kb);
    state.ResumeTiming();
    (void)vkb.Commit(w.outcome.changes, "bench", "step");
    benchmark::DoNotOptimize(vkb.version_count());
  }
}
BENCHMARK(BM_CommitThroughput)
    ->Arg(static_cast<int>(version::ArchivePolicy::kFullMaterialization))
    ->Arg(static_cast<int>(version::ArchivePolicy::kDeltaChain));

}  // namespace
}  // namespace evorec::bench

int main(int argc, char** argv) {
  evorec::bench::PrintDeltaScalingTable();
  evorec::bench::PrintArchivePolicyTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
