// E6 — diversity of measure sets (paper §III.c): the recommended set
// must jointly cover complementary viewpoints. Sweeps the MMR λ and
// compares the three diversity flavours (content / novelty / semantic)
// on mean relevance, set diversity, category coverage and novelty.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace evorec::bench {
namespace {

struct Pool {
  std::vector<recommend::MeasureCandidate> candidates;
  std::vector<double> relevance;
  profile::HumanProfile user;
};

Pool MakePool(uint64_t seed) {
  workload::ScenarioScale scale;
  scale.classes = 70;
  scale.instances = 900;
  scale.edges = 1600;
  scale.versions = 2;
  scale.operations = 300;
  workload::Scenario scenario = workload::MakeDbpediaLike(seed, scale);
  auto ctx = measures::EvolutionContext::FromVersions(
      *scenario.vkb, scenario.vkb->head() - 1, scenario.vkb->head());
  Pool pool;
  if (!ctx.ok()) return pool;
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  recommend::CandidateOptions options;
  options.max_regions = 8;
  auto generated = recommend::GenerateCandidates(registry, *ctx, options);
  if (!generated.ok()) return pool;
  pool.candidates = std::move(generated).value();
  pool.user = scenario.end_user;
  // Mark half of the classes as already seen → novelty discriminates.
  std::vector<rdf::TermId> seen;
  for (size_t i = 0; i < ctx->union_classes().size(); i += 2) {
    seen.push_back(ctx->union_classes()[i]);
  }
  pool.user.RecordSeen(seen);
  recommend::RelatednessScorer scorer(*ctx, {});
  for (const auto& candidate : pool.candidates) {
    pool.relevance.push_back(scorer.Score(pool.user, candidate));
  }
  return pool;
}

void PrintLambdaSweep() {
  PrintHeader("E6 — diversity/relevance trade-off (MMR lambda sweep)",
              "produced sets must cover all the different needs, not one "
              "aspect of evolution");
  Pool pool = MakePool(13);
  if (pool.candidates.empty()) return;
  TablePrinter table({"kind", "lambda", "mean_rel", "set_div",
                      "cat_coverage", "novelty"});
  for (auto kind : {recommend::DiversityKind::kContent,
                    recommend::DiversityKind::kSemantic}) {
    for (double lambda : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      const auto selection = recommend::SelectMmr(
          pool.candidates, pool.relevance, 5, lambda, kind);
      double mean_rel = 0.0;
      double novelty = 0.0;
      for (size_t index : selection) {
        mean_rel += pool.relevance[index];
        novelty +=
            recommend::NoveltyScore(pool.user, pool.candidates[index]);
      }
      mean_rel /= static_cast<double>(selection.size());
      novelty /= static_cast<double>(selection.size());
      table.AddRow(
          {kind == recommend::DiversityKind::kContent ? "content"
                                                      : "semantic",
           TablePrinter::Cell(lambda, 2), TablePrinter::Cell(mean_rel, 3),
           TablePrinter::Cell(
               recommend::SetDiversity(pool.candidates, selection, kind), 3),
           TablePrinter::Cell(
               recommend::CategoryCoverage(pool.candidates, selection), 2),
           TablePrinter::Cell(novelty, 2)});
    }
  }
  table.Print(std::cout);
  std::printf(
      "expected shape: set_div falls and mean_rel rises as lambda -> 1; "
      "semantic kind maximises cat_coverage at low lambda.\n");
}

void PrintSelectorComparison() {
  PrintHeader("E6b — selector ablation",
              "greedy MMR vs MaxMin vs swap-improved MMR");
  Pool pool = MakePool(29);
  if (pool.candidates.empty()) return;
  const double lambda = 0.5;
  const auto kind = recommend::DiversityKind::kContent;
  TablePrinter table({"selector", "objective", "set_div", "mean_rel"});
  auto report = [&](const std::string& name,
                    const std::vector<size_t>& sel) {
    double mean_rel = 0.0;
    for (size_t index : sel) mean_rel += pool.relevance[index];
    if (!sel.empty()) mean_rel /= static_cast<double>(sel.size());
    table.AddRow(
        {name,
         TablePrinter::Cell(recommend::MmrObjective(
                                pool.candidates, pool.relevance, sel, lambda,
                                kind),
                            3),
         TablePrinter::Cell(
             recommend::SetDiversity(pool.candidates, sel, kind), 3),
         TablePrinter::Cell(mean_rel, 3)});
  };
  const auto mmr =
      recommend::SelectMmr(pool.candidates, pool.relevance, 5, lambda, kind);
  report("greedy_mmr", mmr);
  report("maxmin", recommend::SelectMaxMin(pool.candidates, pool.relevance,
                                           5, kind));
  report("mmr+swaps",
         recommend::ImproveBySwaps(pool.candidates, pool.relevance, mmr,
                                   lambda, kind));
  table.Print(std::cout);
}

void PrintGroupDiversityTable() {
  PrintHeader(
      "E6c — group diversity vs merged individual lists",
      "'we cannot just combine the diverse measures produced for the "
      "humans in the group, since in this case we may construct a non "
      "diverse measures set'");
  workload::ScenarioScale scale;
  scale.classes = 70;
  scale.instances = 900;
  scale.edges = 1600;
  scale.versions = 2;
  scale.operations = 300;
  workload::Scenario scenario = workload::MakeDbpediaLike(59, scale);
  auto ctx = measures::EvolutionContext::FromVersions(
      *scenario.vkb, scenario.vkb->head() - 1, scenario.vkb->head());
  if (!ctx.ok()) return;
  const auto head = scenario.vkb->Snapshot(scenario.vkb->head());
  const schema::SchemaView view = schema::SchemaView::Build(**head);
  measures::MeasureRegistry registry = measures::DefaultRegistry();
  recommend::CandidateOptions candidate_options;
  candidate_options.max_regions = 8;
  auto pool = recommend::GenerateCandidates(registry, *ctx,
                                            candidate_options);
  if (!pool.ok()) return;
  recommend::RelatednessScorer scorer(*ctx, {});

  TablePrinter table({"overlap", "strategy", "set_div", "mean_sat",
                      "min_sat", "package"});
  for (double overlap : {0.2, 0.8}) {
    Rng rng(71 + static_cast<uint64_t>(overlap * 10));
    workload::ProfileGenOptions profile_options;
    profile::Group group = workload::GenerateGroup("g", 5, overlap, view,
                                                   profile_options, rng);
    const recommend::UtilityMatrix utilities =
        recommend::BuildUtilityMatrix(*pool, group, scorer);

    // (a) Merge of individually diversified lists: each member runs
    // their own MMR, the group package takes each member's best pick.
    std::vector<size_t> merged;
    for (size_t m = 0; m < group.size(); ++m) {
      const auto personal = recommend::SelectMmr(
          *pool, utilities[m], 2, 0.5, recommend::DiversityKind::kContent);
      for (size_t index : personal) {
        if (std::find(merged.begin(), merged.end(), index) ==
            merged.end()) {
          merged.push_back(index);
          break;  // one new item per member
        }
      }
    }
    // (b) Group-level selection with diversity improvement.
    recommend::GroupSelectOptions group_options;
    group_options.package_size = merged.size();
    group_options.fairness_aware = true;
    group_options.diversify = true;
    group_options.mmr_lambda = 0.5;
    const recommend::GroupSelection grouped =
        recommend::SelectForGroup(*pool, group, scorer, group_options);

    auto report = [&](const char* name, const std::vector<size_t>& sel) {
      const auto diag = recommend::EvaluatePackage(utilities, sel);
      table.AddRow({TablePrinter::Cell(overlap, 1), name,
                    TablePrinter::Cell(
                        recommend::SetDiversity(
                            *pool, sel, recommend::DiversityKind::kContent),
                        3),
                    TablePrinter::Cell(diag.mean_satisfaction, 3),
                    TablePrinter::Cell(diag.min_satisfaction, 3),
                    TablePrinter::Cell(sel.size())});
    };
    report("merged_individual", merged);
    report("group_level", grouped.selection);
  }
  table.Print(std::cout);
  std::printf(
      "expected shape: with high interest overlap the merged individual "
      "lists collapse onto near-duplicate measures (low set_div); "
      "group-level selection keeps the package diverse.\n");
}

void BM_SelectMmr(benchmark::State& state) {
  Pool pool = MakePool(13);
  for (auto _ : state) {
    auto selection = recommend::SelectMmr(
        pool.candidates, pool.relevance, 5, 0.5,
        recommend::DiversityKind::kContent);
    benchmark::DoNotOptimize(selection.data());
  }
  state.counters["pool"] = static_cast<double>(pool.candidates.size());
}
BENCHMARK(BM_SelectMmr);

void BM_ImproveBySwaps(benchmark::State& state) {
  Pool pool = MakePool(13);
  const auto seed_selection = recommend::SelectMmr(
      pool.candidates, pool.relevance, 5, 0.5,
      recommend::DiversityKind::kContent);
  for (auto _ : state) {
    auto improved = recommend::ImproveBySwaps(
        pool.candidates, pool.relevance, seed_selection, 0.5,
        recommend::DiversityKind::kContent);
    benchmark::DoNotOptimize(improved.data());
  }
}
BENCHMARK(BM_ImproveBySwaps);

}  // namespace
}  // namespace evorec::bench

int main(int argc, char** argv) {
  evorec::bench::PrintLambdaSweep();
  evorec::bench::PrintSelectorComparison();
  evorec::bench::PrintGroupDiversityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
