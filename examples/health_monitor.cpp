// Health monitor: the paper's §III.e motivating scenario. A clinical
// KB evolves; analysts may study evolution only through k-anonymous
// aggregate views, and strict access rules keep sensitive regions out
// of their recommendations entirely — while the data protection
// officer (DPO) sees the full picture.
//
// Served through the engine layer: a RecommendationService with the
// access policy attached builds the evolution context once; the
// aggregate panels and both principals' recommendations all read the
// same cached evaluation (the policy gate still runs per principal).
//
//   $ ./health_monitor

#include <cstdio>
#include <iostream>

#include "evorec.h"

int main() {
  using namespace evorec;

  workload::ScenarioScale scale;
  scale.classes = 70;
  scale.properties = 25;
  scale.instances = 1500;
  scale.edges = 2500;
  scale.versions = 2;
  scale.operations = 350;
  workload::Scenario scenario = workload::MakeClinicalKb(777, scale);
  std::printf("clinical KB: %zu classes, %zu sensitive\n",
              scenario.classes.size(), scenario.sensitive_classes.size());

  const measures::MeasureRegistry registry = measures::DefaultRegistry();
  engine::RecommendationService service(registry);
  service.AttachAccessPolicy(&scenario.policy);

  const version::VersionId head = scenario.vkb->head();
  auto evaluation = service.engine().Evaluate(*scenario.vkb, head - 1, head);
  if (!evaluation.ok()) {
    std::fprintf(stderr, "evaluation failed: %s\n",
                 evaluation.status().ToString().c_str());
    return 1;
  }
  const measures::EvolutionContext& ctx = (*evaluation)->context();

  // --- 1. The raw per-class evolution report would re-identify:
  const auto head_kb = scenario.vkb->Snapshot(head);
  const schema::SchemaView view = schema::SchemaView::Build(**head_kb);
  anonymity::AggregateTable raw({"class"}, "changes");
  for (rdf::TermId cls : ctx.union_classes()) {
    const size_t population = view.InstanceCount(cls);
    if (population == 0) continue;
    (void)raw.AddRow({(*head_kb)->dictionary().term(cls).lexical},
                     static_cast<double>(
                         ctx.delta_index().ExtendedChanges(cls)),
                     population);
  }
  const double raw_risk = anonymity::ReidentificationRisk(raw);
  std::printf(
      "raw aggregate view: %zu rows, re-identification risk %.2f "
      "(smallest group: %.0f patient(s))\n",
      raw.row_count(), raw_risk, raw_risk > 0.0 ? 1.0 / raw_risk : 0.0);

  // --- 2. Enforce k-anonymity before anyone sees it:
  const size_t k = 5;
  const anonymity::ValueHierarchy taxonomy =
      anonymity::ValueHierarchy::FromClassHierarchy(view.hierarchy(),
                                                    (*head_kb)->dictionary());
  auto anonymized = anonymity::Anonymize(raw, k, {taxonomy});
  if (!anonymized.ok()) {
    std::fprintf(stderr, "anonymization failed: %s\n",
                 anonymized.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "k=%zu view: %zu rows, generalisation level %zu, %zu patients "
      "suppressed, information loss %.2f, risk %.3f\n",
      k, anonymized->table.row_count(),
      anonymized->levels.empty() ? size_t{0} : anonymized->levels[0],
      anonymized->suppressed_count, anonymized->information_loss,
      anonymity::ReidentificationRisk(anonymized->table));
  TablePrinter table({"generalised class", "changes", "patients"});
  for (const auto& row : anonymized->table.rows()) {
    table.AddRow({row.qi[0], TablePrinter::Cell(row.value, 0),
                  TablePrinter::Cell(row.count)});
    if (table.row_count() >= 8) break;
  }
  table.Print(std::cout);

  // --- 3. Recommendations respect the access policy — served from
  // the same cached evaluation the panels above used:
  profile::HumanProfile analyst("analyst");
  // The analyst is (maliciously?) most interested in the sensitive
  // region.
  if (!scenario.sensitive_classes.empty()) {
    analyst.SetInterest(scenario.sensitive_classes[0], 1.0);
  }
  auto analyst_view = service.Recommend(*scenario.vkb, head - 1, head,
                                        analyst);
  profile::HumanProfile dpo("dpo");
  if (!scenario.sensitive_classes.empty()) {
    dpo.SetInterest(scenario.sensitive_classes[0], 1.0);
  }
  auto dpo_view = service.Recommend(*scenario.vkb, head - 1, head, dpo);
  if (!analyst_view.ok() || !dpo_view.ok()) {
    std::fprintf(stderr, "recommendation failed\n");
    return 1;
  }
  std::printf(
      "\nanalyst: %zu candidates visible, %zu dropped, %zu report "
      "entries redacted\n",
      analyst_view->candidate_pool_size, analyst_view->dropped_candidates,
      analyst_view->redacted_terms);
  std::printf("dpo:     %zu candidates visible, %zu dropped, %zu redacted\n",
              dpo_view->candidate_pool_size, dpo_view->dropped_candidates,
              dpo_view->redacted_terms);
  std::printf("\nanalyst's (policy-filtered) package:\n");
  for (const auto& item : analyst_view->items) {
    std::printf("  %s\n", item.candidate.id.c_str());
  }
  const engine::EngineStats stats = service.engine_stats();
  std::printf(
      "\nengine: %llu context build(s) served every panel and both "
      "principals (%llu cache hits)\n",
      static_cast<unsigned long long>(stats.contexts_built),
      static_cast<unsigned long long>(stats.context_hits));

  // --- 4. Operations under failure: a clinical monitor cannot go
  // dark because a disk does. The service runs on durable storage
  // (checkpoints + write-ahead log); when a commit fails it flips to
  // an explicit DEGRADED state and keeps serving the last committed
  // evaluation, flagged, until a commit succeeds again. Scripted here
  // with the fault-injection environment (docs/STORAGE.md).
  const auto state_name = [](engine::HealthState s) {
    return s == engine::HealthState::kDegraded ? "DEGRADED" : "OK";
  };
  storage::FaultInjectionEnv disk;  // the demo's scriptable "disk"
  storage::SnapshotOptions snap_options;
  snap_options.sync = true;
  snap_options.env = &disk;
  if (!version::SaveCheckpoint(*scenario.vkb, head, "ops/checkpoints", 3,
                               snap_options)
           .ok()) {
    std::fprintf(stderr, "checkpoint failed\n");
    return 1;
  }
  storage::LogOptions log_options;
  log_options.sync_on_append = true;
  log_options.env = &disk;
  auto wal = storage::CommitLog::Open("ops/wal.evlog", log_options);
  if (!wal.ok()) {
    std::fprintf(stderr, "wal open failed\n");
    return 1;
  }
  scenario.vkb->AttachCommitLog(&*wal);

  const auto next_changes = [&scenario](uint32_t epoch) {
    const auto now = scenario.vkb->Snapshot(scenario.vkb->head());
    workload::EvolutionOptions options;
    options.operations = 40;
    options.epoch = epoch;
    options.seed = 778 + epoch;
    return workload::GenerateEvolution(**now, scenario.vkb->dictionary(),
                                       options)
        .changes;
  };

  std::printf("\n[ops] health: %s\n", state_name(service.health_state()));
  storage::FaultPlan outage;
  outage.fail_writes = 10;  // outlasts the WAL's retry budget
  disk.set_plan(outage);
  auto broken = service.Commit(*scenario.vkb, next_changes(50), "ops",
                               "during outage");
  engine::ServiceHealth ops_health = service.health();
  std::printf(
      "[ops] commit during disk outage: %s\n[ops] health: %s "
      "(failed commits: %llu, last error: %s)\n",
      broken.ok() ? "ok?!" : "failed (history untouched)",
      state_name(ops_health.state),
      static_cast<unsigned long long>(ops_health.failed_commits),
      ops_health.last_error.c_str());

  auto stale_view = service.Recommend(*scenario.vkb, head - 1, head, dpo);
  if (stale_view.ok()) {
    std::printf(
        "[ops] dpo read while degraded: %zu item(s), degraded flag: %s\n",
        stale_view->items.size(), stale_view->degraded ? "true" : "false");
  }

  disk.ClearFaults();  // the disk comes back
  auto healed = service.Commit(*scenario.vkb, next_changes(51), "ops",
                               "after repair");
  ops_health = service.health();
  std::printf(
      "[ops] commit after repair: %s\n[ops] health: %s (recoveries: %llu, "
      "degraded reads served: %llu)\n",
      healed.ok() ? "ok" : "failed", state_name(ops_health.state),
      static_cast<unsigned long long>(ops_health.recoveries),
      static_cast<unsigned long long>(ops_health.degraded_serves));

  // A restart self-heals from the checkpoint directory + WAL and says
  // exactly what it did:
  version::RecoveryOptions recovery_options;
  recovery_options.env = &disk;
  auto recovered = version::RecoverFromCheckpoints(
      "ops/checkpoints", "ops/wal.evlog", recovery_options);
  if (!recovered.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  std::printf("\n[ops] restart recovery:\n%s",
              recovered->report.ToString().c_str());

  // --- 5. Overload: when demand outruns capacity the monitor must
  // refuse crisply, not let every queue rot until the whole ward's
  // p99 blows. A front-door service runs the overload stack on the
  // same scripted clock: rotted requests are shed with a typed
  // kResourceExhausted, sustained shedding trips a hysteretic
  // brown-out into a declared cheaper scoring mode (results flagged),
  // and recovery is automatic once pressure clears
  // (docs/ARCHITECTURE.md, "Overload control").
  engine::ServiceOptions front_options;
  front_options.env = &disk;  // scripted clock — deterministic demo
  front_options.overload.admission_enabled = true;
  front_options.overload.admission.max_queue_us = 10;
  front_options.overload.brownout.enabled = true;
  front_options.overload.brownout.window_us = 1000;
  front_options.overload.brownout.enter_sheds_per_window = 2;
  front_options.overload.brownout.exit_clean_windows = 2;
  engine::RecommendationService front(registry, front_options);
  front.AttachAccessPolicy(&scenario.policy);

  const version::VersionId tip = scenario.vkb->head();
  auto calm = front.Recommend(*scenario.vkb, tip - 1, tip, dpo);
  std::printf("\n[overload] calm traffic: %s\n",
              calm.ok() ? "served (exact mode)"
                        : calm.status().ToString().c_str());

  // A surge: requests arrive having already waited past the queue cap.
  RequestBudget rotted;
  rotted.enqueue_us = 0;
  disk.AdvanceClockMicros(100);
  for (int i = 0; i < 2; ++i) {
    auto shed = front.Recommend(*scenario.vkb, tip - 1, tip, dpo, rotted);
    std::printf("[overload] rotted request: %s\n",
                shed.ok() ? "served?!" : shed.status().ToString().c_str());
  }
  auto brown = front.Recommend(*scenario.vkb, tip - 1, tip, dpo);
  if (brown.ok()) {
    std::printf("[overload] under pressure: served, brownout flag: %s\n",
                brown->brownout ? "true" : "false");
  }
  std::printf("[overload] health during surge:\n%s\n",
              front.health().ToString().c_str());

  // The surge ends; two clean windows later the exact mode is back.
  disk.AdvanceClockMicros(3000);
  auto after = front.Recommend(*scenario.vkb, tip - 1, tip, dpo);
  if (after.ok()) {
    std::printf(
        "[overload] pressure cleared: served, brownout flag: %s "
        "(brown-outs entered: %llu, exited: %llu)\n",
        after->brownout ? "true" : "false",
        static_cast<unsigned long long>(front.brownout_stats().entries),
        static_cast<unsigned long long>(front.brownout_stats().exits));
  }
  return 0;
}
