// Curator dashboard: a curators' team watches a DBpedia-like KB evolve
// across several versions. For every transition the dashboard shows
// the high-level change summary, the hottest regions, and a *fair*
// group recommendation of evolution measures — with full provenance so
// any pick can be audited (paper §III.b + §III.d).
//
// The dashboard runs on the serving API: a RecommendationService
// caches each transition's shared evaluation, so redrawing a panel
// (or a second curators' team asking about the same transition) never
// rebuilds contexts or recomputes measures.
//
//   $ ./curator_dashboard

#include <cstdio>
#include <iostream>

#include "evorec.h"

namespace {

using namespace evorec;

void ShowTransition(const workload::Scenario& scenario,
                    version::VersionId from, version::VersionId to,
                    engine::RecommendationService& service,
                    profile::Group& curators,
                    provenance::ProvenanceStore& prov) {
  std::printf("\n=== transition v%u -> v%u ===\n", from, to);
  // The service's engine owns the shared evaluation of this
  // transition; the summary panels below read the same cached context
  // the recommendation is served from.
  auto evaluation = service.engine().Evaluate(*scenario.vkb, from, to);
  if (!evaluation.ok()) {
    std::fprintf(stderr, "context failed: %s\n",
                 evaluation.status().ToString().c_str());
    return;
  }
  const measures::EvolutionContext* ctx = &(*evaluation)->context();

  // High-level change summary (what happened, in curator terms).
  const delta::HighLevelDelta hld = delta::DetectHighLevelChanges(
      ctx->low_level_delta(), ctx->view_before(), ctx->view_after(),
      ctx->vocabulary());
  std::printf("low-level changes: %zu (pattern coverage %.0f%%)\n",
              ctx->low_level_delta().size(), hld.coverage * 100.0);
  for (const auto& [kind, count] : hld.CountsByKind()) {
    std::printf("  %-20s %zu\n",
                delta::HighLevelChangeKindName(kind).c_str(), count);
  }

  // Hottest regions by extended change count.
  measures::MeasureReport heat;
  for (rdf::TermId cls : ctx->union_classes()) {
    heat.Add(cls, static_cast<double>(
                      ctx->delta_index().ExtendedChanges(cls)));
  }
  std::printf("hottest classes:\n");
  for (const auto& scored : heat.TopK(3)) {
    std::printf("  %-50s %4.0f changes\n",
                scenario.vkb->dictionary().term(scored.term).lexical.c_str(),
                scored.score);
  }

  // Fair group recommendation, served from the warm cache.
  auto list = service.RecommendGroup(*scenario.vkb, from, to, curators);
  if (!list.ok()) {
    std::fprintf(stderr, "group recommendation failed: %s\n",
                 list.status().ToString().c_str());
    return;
  }
  std::printf("recommended measure package for the team:\n");
  for (const auto& item : list->items) {
    std::printf("  %-45s group-utility %.2f\n", item.candidate.id.c_str(),
                item.relatedness);
  }
  std::printf(
      "fairness: mean satisfaction %.2f, min %.2f, gini %.2f, "
      "always-least-satisfied member: %s\n",
      list->fairness.mean_satisfaction, list->fairness.min_satisfaction,
      list->fairness.gini,
      list->fairness.has_always_least_satisfied_member ? "YES (unfair!)"
                                                       : "none");
  std::printf("provenance: %zu records captured (total store %zu)\n",
              list->provenance_trail.size(), prov.size());
}

}  // namespace

int main() {
  using namespace evorec;

  workload::ScenarioScale scale;
  scale.classes = 80;
  scale.properties = 30;
  scale.instances = 1200;
  scale.edges = 2200;
  scale.versions = 3;
  scale.operations = 300;
  workload::Scenario scenario = workload::MakeDbpediaLike(2024, scale);
  std::printf("scenario '%s': %zu versions, %zu classes\n",
              scenario.name.c_str(), scenario.vkb->version_count(),
              scenario.classes.size());

  const measures::MeasureRegistry registry = measures::DefaultRegistry();
  provenance::ProvenanceStore prov;
  engine::ServiceOptions options;
  options.recommender.package_size = 4;
  options.recommender.group.fairness_aware = true;
  engine::RecommendationService service(registry, options);
  service.AttachProvenance(&prov);

  for (version::VersionId v = 1; v < scenario.vkb->version_count(); ++v) {
    ShowTransition(scenario, v - 1, v, service, scenario.curators, prov);
  }
  const engine::EngineStats engine_stats = service.engine_stats();
  std::printf(
      "\nengine: %llu contexts built, %llu cache hits across the "
      "dashboard's panels\n",
      static_cast<unsigned long long>(engine_stats.contexts_built),
      static_cast<unsigned long long>(engine_stats.context_hits));

  // Trend view across the whole history (§I: "observe changes trends
  // and identify the most changed parts").
  measures::ClassChangeCountMeasure churn;
  auto timeline =
      measures::EvolutionTimeline::Compute(*scenario.vkb, churn);
  if (timeline.ok()) {
    std::printf("\n=== trends across %zu transitions ===\n",
                timeline->transition_count());
    std::printf("strongest upward trend:\n");
    for (const auto& t : timeline->TopTrending(3)) {
      std::printf("  %-50s slope %+6.1f mean %6.1f\n",
                  scenario.vkb->dictionary().term(t.term).lexical.c_str(),
                  t.slope, t.mean);
    }
    std::printf("burstiest classes:\n");
    for (const auto& t : timeline->TopBursty(3)) {
      std::printf("  %-50s burst %5.1fx peak at transition %zu\n",
                  scenario.vkb->dictionary().term(t.term).lexical.c_str(),
                  t.burstiness, t.peak_transition + 1);
    }
  }

  // Audit trail: how was the last package derived?
  if (!prov.empty()) {
    std::printf("\n=== audit: derivation of the last pipeline stage ===\n");
    const provenance::RecordId last = prov.size() - 1;
    auto chain = prov.DerivationChain(last);
    if (chain.ok()) {
      auto record = prov.Get(last);
      std::printf("%s (by %s)\n", record->activity.c_str(),
                  record->agent.c_str());
      for (const auto& link : *chain) {
        std::printf("  <- %s: %s\n", link.activity.c_str(),
                    link.note.c_str());
      }
    }
    auto trust = provenance::TrustOf(prov, last);
    if (trust.ok()) {
      std::printf("trust score of the final artefact: %.3f\n", *trust);
    }
  }
  return 0;
}
