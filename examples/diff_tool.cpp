// diff_tool: a command-line utility that diffs two N-Triples files and
// prints (a) the low-level delta, (b) the detected high-level change
// patterns, and (c) the most affected classes under every registered
// evolution measure. With no arguments it runs on a built-in demo pair
// so it stays runnable out of the box.
//
//   $ ./diff_tool before.nt after.nt [top_k]

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "evorec.h"

namespace {

using namespace evorec;

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// A small built-in example pair so `./diff_tool` works standalone.
constexpr const char* kDemoBefore = R"(
<http://ex/Person> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2000/01/rdf-schema#Class> .
<http://ex/Student> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2000/01/rdf-schema#Class> .
<http://ex/Worker> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2000/01/rdf-schema#Class> .
<http://ex/Student> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex/Person> .
<http://ex/alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Person> .
<http://ex/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Student> .
)";

constexpr const char* kDemoAfter = R"(
<http://ex/Person> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2000/01/rdf-schema#Class> .
<http://ex/Student> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2000/01/rdf-schema#Class> .
<http://ex/Worker> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2000/01/rdf-schema#Class> .
<http://ex/Student> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex/Worker> .
<http://ex/alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Person> .
<http://ex/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Student> .
<http://ex/carol> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Student> .
)";

int Run(const std::string& before_text, const std::string& after_text,
        size_t top_k) {
  auto dict = std::make_shared<rdf::Dictionary>();
  rdf::KnowledgeBase before(dict);
  rdf::KnowledgeBase after(dict);
  if (Status s = rdf::ParseNTriples(before_text, *dict, before.store());
      !s.ok()) {
    std::fprintf(stderr, "before: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = rdf::ParseNTriples(after_text, *dict, after.store());
      !s.ok()) {
    std::fprintf(stderr, "after: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("before: %zu triples, after: %zu triples\n", before.size(),
              after.size());

  auto ctx = measures::EvolutionContext::Build(before, after);
  if (!ctx.ok()) {
    std::fprintf(stderr, "%s\n", ctx.status().ToString().c_str());
    return 1;
  }

  const delta::LowLevelDelta& delta = ctx->low_level_delta();
  std::printf("\nlow-level delta: |d+|=%zu |d-|=%zu |d|=%zu\n",
              delta.added.size(), delta.removed.size(), delta.size());

  const delta::HighLevelDelta hld = delta::DetectHighLevelChanges(
      delta, ctx->view_before(), ctx->view_after(), ctx->vocabulary());
  std::printf("high-level patterns (coverage %.0f%%):\n",
              hld.coverage * 100.0);
  for (const auto& [kind, count] : hld.CountsByKind()) {
    std::printf("  %-22s %zu\n",
                delta::HighLevelChangeKindName(kind).c_str(), count);
  }

  std::printf("\nmost affected terms per measure (top %zu):\n", top_k);
  const measures::MeasureRegistry registry = measures::ExtendedRegistry();
  TablePrinter table({"measure", "term", "score"});
  for (const auto& measure : registry.CreateAll()) {
    auto report = measure->Compute(*ctx);
    if (!report.ok()) continue;
    for (const auto& scored : report->TopK(top_k)) {
      if (scored.score <= 0.0) continue;
      table.AddRow({measure->info().name,
                    dict->term(scored.term).lexical,
                    TablePrinter::Cell(scored.score, 4)});
    }
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  size_t top_k = 3;
  if (argc >= 4) {
    top_k = static_cast<size_t>(std::atoi(argv[3]));
    if (top_k == 0) top_k = 3;
  }
  if (argc >= 3) {
    auto before = ReadFile(argv[1]);
    auto after = ReadFile(argv[2]);
    if (!before.ok() || !after.ok()) {
      std::fprintf(stderr, "usage: %s before.nt after.nt [top_k]\n",
                   argv[0]);
      return 1;
    }
    return Run(*before, *after, top_k);
  }
  std::printf("no input files given — running the built-in demo pair\n");
  return Run(kDemoBefore, kDemoAfter, top_k);
}
