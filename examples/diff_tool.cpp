// diff_tool: a command-line utility that diffs two KB states — given
// as N-Triples text or as binary storage snapshots (auto-detected by
// file magic, so `diff_tool saved.evsnap after.nt` works) — and
// prints (a) the low-level delta, (b) the detected high-level change
// patterns, and (c) the most affected classes under every registered
// evolution measure. The version pair is served through the engine
// layer (RecommendationService) like social_feed/curator_dashboard,
// so the measure table reads the engine's memoized reports instead of
// recomputing each measure. With no arguments it runs on a built-in
// demo pair so it stays runnable out of the box.
//
//   $ ./diff_tool before.{nt|evsnap} after.{nt|evsnap} [top_k]

#include <cstdio>
#include <iostream>

#include "evorec.h"

namespace {

using namespace evorec;

// A small built-in example pair so `./diff_tool` works standalone.
constexpr const char* kDemoBefore = R"(
<http://ex/Person> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2000/01/rdf-schema#Class> .
<http://ex/Student> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2000/01/rdf-schema#Class> .
<http://ex/Worker> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2000/01/rdf-schema#Class> .
<http://ex/Student> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex/Person> .
<http://ex/alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Person> .
<http://ex/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Student> .
)";

constexpr const char* kDemoAfter = R"(
<http://ex/Person> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2000/01/rdf-schema#Class> .
<http://ex/Student> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2000/01/rdf-schema#Class> .
<http://ex/Worker> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2000/01/rdf-schema#Class> .
<http://ex/Student> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex/Worker> .
<http://ex/alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Person> .
<http://ex/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Student> .
<http://ex/carol> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Student> .
)";

// Loads one input — binary snapshot or N-Triples text — into `kb`,
// re-encoding snapshot ids against the shared dictionary so both
// sides speak the same TermIds (the invariant every measure needs).
Status LoadInput(const std::string& label, const std::string& bytes,
                 rdf::KnowledgeBase& kb) {
  if (storage::LooksLikeSnapshot(bytes)) {
    auto decoded = storage::DecodeSnapshot(bytes);
    if (!decoded.ok()) {
      return Status(decoded.status().code(),
                    label + ": " + decoded.status().message());
    }
    std::printf("%s: binary snapshot of version %u (%llu triples)\n",
                label.c_str(), decoded->info.version_id,
                static_cast<unsigned long long>(decoded->info.triple_count));
    for (const rdf::Triple& t : decoded->store.triples()) {
      kb.store().Add(
          rdf::Triple(kb.dictionary().Intern(decoded->dictionary->term(t.subject)),
                      kb.dictionary().Intern(decoded->dictionary->term(t.predicate)),
                      kb.dictionary().Intern(decoded->dictionary->term(t.object))));
    }
    kb.store().Compact();
    return OkStatus();
  }
  return rdf::ParseNTriples(bytes, kb.dictionary(), kb.store());
}

int Run(const std::string& before_text, const std::string& after_text,
        size_t top_k) {
  auto dict = std::make_shared<rdf::Dictionary>();
  rdf::KnowledgeBase before(dict);
  rdf::KnowledgeBase after(dict);
  if (Status s = LoadInput("before", before_text, before); !s.ok()) {
    std::fprintf(stderr, "before: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = LoadInput("after", after_text, after); !s.ok()) {
    std::fprintf(stderr, "after: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("before: %zu triples, after: %zu triples\n", before.size(),
              after.size());

  // Lift the pair into a two-version KB and serve it through the
  // engine: the context and every measure report are built once and
  // memoized, exactly like the serving examples.
  version::VersionedKnowledgeBase vkb(version::ArchivePolicy::kDeltaChain,
                                      before);
  version::ChangeSet changes;
  changes.additions = rdf::TripleStore::Difference(after.store(),
                                                   before.store());
  changes.removals = rdf::TripleStore::Difference(before.store(),
                                                  after.store());
  if (auto committed = vkb.Commit(std::move(changes), "diff_tool", "after");
      !committed.ok()) {
    std::fprintf(stderr, "%s\n", committed.status().ToString().c_str());
    return 1;
  }

  const measures::MeasureRegistry registry = measures::ExtendedRegistry();
  engine::RecommendationService service(registry);
  auto evaluation = service.engine().Evaluate(vkb, 0, 1);
  if (!evaluation.ok()) {
    std::fprintf(stderr, "%s\n", evaluation.status().ToString().c_str());
    return 1;
  }
  const measures::EvolutionContext& ctx = (*evaluation)->context();

  const delta::LowLevelDelta& delta = ctx.low_level_delta();
  std::printf("\nlow-level delta: |d+|=%zu |d-|=%zu |d|=%zu\n",
              delta.added.size(), delta.removed.size(), delta.size());

  const delta::HighLevelDelta hld = delta::DetectHighLevelChanges(
      delta, ctx.view_before(), ctx.view_after(), ctx.vocabulary());
  std::printf("high-level patterns (coverage %.0f%%):\n",
              hld.coverage * 100.0);
  for (const auto& [kind, count] : hld.CountsByKind()) {
    std::printf("  %-22s %zu\n",
                delta::HighLevelChangeKindName(kind).c_str(), count);
  }

  std::printf("\nmost affected terms per measure (top %zu):\n", top_k);
  auto reports = (*evaluation)->AllReports();
  if (!reports.ok()) {
    std::fprintf(stderr, "%s\n", reports.status().ToString().c_str());
    return 1;
  }
  const std::vector<measures::MeasureInfo> infos = registry.List();
  TablePrinter table({"measure", "term", "score"});
  for (size_t i = 0; i < reports->size() && i < infos.size(); ++i) {
    for (const auto& scored : (*reports)[i]->TopK(top_k)) {
      if (scored.score <= 0.0) continue;
      table.AddRow({infos[i].name, dict->term(scored.term).lexical,
                    TablePrinter::Cell(scored.score, 4)});
    }
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  size_t top_k = 3;
  if (argc >= 4) {
    top_k = static_cast<size_t>(std::atoi(argv[3]));
    if (top_k == 0) top_k = 3;
  }
  if (argc >= 3) {
    auto before = evorec::ReadFileToString(argv[1]);
    auto after = evorec::ReadFileToString(argv[2]);
    if (!before.ok() || !after.ok()) {
      std::fprintf(stderr,
                   "usage: %s before.{nt|evsnap} after.{nt|evsnap} [top_k]\n",
                   argv[0]);
      return 1;
    }
    return Run(*before, *after, top_k);
  }
  std::printf("no input files given — running the built-in demo pair\n");
  return Run(kDemoBefore, kDemoAfter, top_k);
}
