// Quickstart: build a tiny knowledge base, evolve it, compute the
// paper's evolution measures, and get a personalised recommendation.
//
//   $ ./quickstart

#include <cstdio>
#include <iostream>

#include "evorec.h"

int main() {
  using namespace evorec;

  // 1. Build version 1 of a tiny KB: a Person/Student hierarchy with a
  //    couple of instances.
  rdf::KnowledgeBase v1;
  v1.DeclareClass("http://ex.org/Person");
  v1.DeclareClass("http://ex.org/Student");
  v1.DeclareClass("http://ex.org/City");
  v1.AddIriTriple("http://ex.org/Student",
                  "http://www.w3.org/2000/01/rdf-schema#subClassOf",
                  "http://ex.org/Person");
  v1.DeclareProperty("http://ex.org/livesIn", "http://ex.org/Person",
                     "http://ex.org/City");
  v1.AddIriTriple("http://ex.org/alice",
                  "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
                  "http://ex.org/Person");
  v1.AddIriTriple("http://ex.org/rome",
                  "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
                  "http://ex.org/City");

  // 2. Commit it into a versioned store and apply one transition:
  //    new students arrive, alice moves to rome.
  version::VersionedKnowledgeBase vkb(
      version::ArchivePolicy::kFullMaterialization, v1);
  version::ChangeSet changes;
  auto& dict = vkb.dictionary();
  const auto& voc = vkb.vocabulary();
  for (int i = 0; i < 3; ++i) {
    changes.additions.push_back(
        {dict.InternIri("http://ex.org/student" + std::to_string(i)),
         voc.rdf_type, dict.InternIri("http://ex.org/Student")});
  }
  changes.additions.push_back({dict.InternIri("http://ex.org/alice"),
                               dict.InternIri("http://ex.org/livesIn"),
                               dict.InternIri("http://ex.org/rome")});
  auto v2 = vkb.Commit(changes, "quickstart", "students arrive");
  if (!v2.ok()) {
    std::fprintf(stderr, "commit failed: %s\n",
                 v2.status().ToString().c_str());
    return 1;
  }

  // 3. Build the evolution context for (v1 → v2) and run every
  //    registered measure.
  auto ctx = measures::EvolutionContext::FromVersions(vkb, 0, *v2);
  if (!ctx.ok()) {
    std::fprintf(stderr, "context failed: %s\n",
                 ctx.status().ToString().c_str());
    return 1;
  }
  std::printf("low-level delta: |d+|=%zu |d-|=%zu\n",
              ctx->low_level_delta().added.size(),
              ctx->low_level_delta().removed.size());

  const measures::MeasureRegistry registry = measures::DefaultRegistry();
  TablePrinter table({"measure", "category", "top class", "score"});
  for (const auto& measure : registry.CreateAll()) {
    auto report = measure->Compute(*ctx);
    if (!report.ok()) continue;
    const auto top = report->TopK(1);
    if (top.empty()) continue;
    table.AddRow({measure->info().name,
                  measures::MeasureCategoryName(measure->info().category),
                  dict.term(top[0].term).lexical,
                  TablePrinter::Cell(top[0].score, 3)});
  }
  table.Print(std::cout);

  // 4. Ask the recommender what a student-curious user should look at.
  profile::HumanProfile user("quickstart-user");
  user.SetInterest(dict.InternIri("http://ex.org/Student"), 1.0);
  recommend::RecommenderOptions options;
  options.package_size = 3;
  recommend::Recommender recommender(registry, options);
  auto list = recommender.RecommendForUser(*ctx, user);
  if (!list.ok()) {
    std::fprintf(stderr, "recommendation failed: %s\n",
                 list.status().ToString().c_str());
    return 1;
  }
  std::printf("\nrecommended evolution measures for %s:\n",
              user.id().c_str());
  for (const auto& item : list->items) {
    std::printf("- %s (relatedness %.2f)\n", item.candidate.id.c_str(),
                item.relatedness);
    std::printf("%s", item.explanation.ToText().c_str());
  }
  std::printf("set diversity %.2f, category coverage %.2f\n",
              list->set_diversity, list->category_coverage);
  return 0;
}
