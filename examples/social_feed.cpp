// Social feed: the paper's §I vision of humans who "generate data and
// are the targets of data analysis" being notified about how *their*
// data evolves. A feed-like KB churns through many small versions; a
// user with narrow interests gets a fresh, novelty-aware digest after
// every burst — repeated items stop being recommended.
//
// Served through the engine layer: a RecommendationService keeps each
// burst's evolution context and measure reports cached, so the
// thousandth follower of this feed costs scoring + selection only.
//
//   $ ./social_feed

#include <cstdio>
#include <iostream>

#include "evorec.h"

int main() {
  using namespace evorec;

  workload::ScenarioScale scale;
  scale.classes = 60;
  scale.properties = 20;
  scale.instances = 1000;
  scale.edges = 2000;
  scale.versions = 4;  // several small bursts
  scale.operations = 150;
  workload::Scenario scenario = workload::MakeSocialFeed(555, scale);
  std::printf("social feed KB: %zu versions of instance churn\n",
              scenario.vkb->version_count());

  const measures::MeasureRegistry registry = measures::DefaultRegistry();
  engine::ServiceOptions options;
  options.recommender.package_size = 3;
  options.recommender.novelty_weight = 0.5;  // §III.c novelty diversity
  options.recommender.diversity = recommend::DiversityKind::kNovelty;
  engine::RecommendationService service(registry, options);

  profile::HumanProfile& user = scenario.end_user;
  std::printf("user '%s' follows %zu topics\n\n", user.id().c_str(),
              user.interests().size());

  for (version::VersionId v = 1; v < scenario.vkb->version_count(); ++v) {
    auto digest = service.Recommend(*scenario.vkb, v - 1, v, user);
    if (!digest.ok()) continue;

    std::printf("--- digest after burst %u ---\n", v);
    double mean_novelty = 0.0;
    for (const auto& item : digest->items) {
      std::printf("  %-45s rel %.2f novelty %.2f\n",
                  item.candidate.id.c_str(), item.relatedness,
                  item.novelty);
      mean_novelty += item.novelty;
    }
    if (!digest->items.empty()) {
      mean_novelty /= static_cast<double>(digest->items.size());
    }
    std::printf("  seen-history %zu terms, digest novelty %.2f\n\n",
                user.seen_count(), mean_novelty);
  }

  // The feed has many followers: serve the last burst to a batch of
  // users against the now-warm cache — one context build total.
  const version::VersionId head = scenario.vkb->head();
  std::vector<profile::HumanProfile> followers;
  for (int i = 0; i < 8; ++i) {
    profile::HumanProfile follower = scenario.end_user;
    follower.set_id("follower-" + std::to_string(i));
    followers.push_back(std::move(follower));
  }
  std::vector<profile::HumanProfile*> batch;
  for (profile::HumanProfile& follower : followers) {
    batch.push_back(&follower);
  }
  auto digests = service.RecommendBatch(*scenario.vkb, head - 1, head, batch);
  const engine::EngineStats stats = service.engine_stats();
  if (digests.ok()) {
    std::printf(
        "served %zu followers of burst %u from the warm cache "
        "(%llu contexts built for %llu requests total)\n",
        digests->size(), head,
        static_cast<unsigned long long>(stats.contexts_built),
        static_cast<unsigned long long>(stats.context_hits +
                                        stats.context_misses));
  }

  std::printf(
      "\nnote how the seen-history grows and repeated regions lose "
      "novelty across digests — the novelty-based diversity of "
      "paper SIII.c in action.\n");
  return 0;
}
