// Social feed: the paper's §I vision of humans who "generate data and
// are the targets of data analysis" being notified about how *their*
// data evolves. A feed-like KB churns through many small versions; a
// user with narrow interests gets a fresh, novelty-aware digest after
// every burst — repeated items stop being recommended.
//
//   $ ./social_feed

#include <cstdio>
#include <iostream>

#include "evorec.h"

int main() {
  using namespace evorec;

  workload::ScenarioScale scale;
  scale.classes = 60;
  scale.properties = 20;
  scale.instances = 1000;
  scale.edges = 2000;
  scale.versions = 4;  // several small bursts
  scale.operations = 150;
  workload::Scenario scenario = workload::MakeSocialFeed(555, scale);
  std::printf("social feed KB: %zu versions of instance churn\n",
              scenario.vkb->version_count());

  const measures::MeasureRegistry registry = measures::DefaultRegistry();
  recommend::RecommenderOptions options;
  options.package_size = 3;
  options.novelty_weight = 0.5;  // §III.c novelty-based diversity
  options.diversity = recommend::DiversityKind::kNovelty;
  recommend::Recommender recommender(registry, options);

  profile::HumanProfile& user = scenario.end_user;
  std::printf("user '%s' follows %zu topics\n\n", user.id().c_str(),
              user.interests().size());

  for (version::VersionId v = 1; v < scenario.vkb->version_count(); ++v) {
    auto ctx =
        measures::EvolutionContext::FromVersions(*scenario.vkb, v - 1, v);
    if (!ctx.ok()) continue;
    auto digest = recommender.RecommendForUser(*ctx, user);
    if (!digest.ok()) continue;

    std::printf("--- digest after burst %u (|delta| = %zu) ---\n", v,
                ctx->low_level_delta().size());
    double mean_novelty = 0.0;
    for (const auto& item : digest->items) {
      std::printf("  %-45s rel %.2f novelty %.2f\n",
                  item.candidate.id.c_str(), item.relatedness,
                  item.novelty);
      mean_novelty += item.novelty;
    }
    if (!digest->items.empty()) {
      mean_novelty /= static_cast<double>(digest->items.size());
    }
    std::printf("  seen-history %zu terms, digest novelty %.2f\n\n",
                user.seen_count(), mean_novelty);
  }

  std::printf(
      "note how the seen-history grows and repeated regions lose "
      "novelty across digests — the novelty-based diversity of "
      "paper SIII.c in action.\n");
  return 0;
}
